#include "core/trace_builder.h"

#include <cassert>
#include <stdexcept>

namespace accelflow::core {

TraceBuilder& TraceBuilder::seq(
    std::initializer_list<accel::AccelType> accels) {
  for (const auto a : accels) {
    IrOp op;
    op.kind = TraceOp::Kind::kInvoke;
    op.accel = a;
    ops_.push_back(std::move(op));
  }
  return *this;
}

TraceBuilder& TraceBuilder::branch(
    BranchCond cond, const std::function<void(TraceBuilder&)>& then) {
  TraceBuilder body(lib_);
  then(body);
  IrOp op;
  op.kind = TraceOp::Kind::kBranchSkip;
  op.cond = cond;
  op.body = std::move(body.ops_);
  if (ir_nibbles(op) > kMaxNibbles) {
    throw std::runtime_error(
        "branch body too large for one trace; restructure with "
        "branch_else_goto");
  }
  ops_.push_back(std::move(op));
  return *this;
}

TraceBuilder& TraceBuilder::branch_else_goto(BranchCond cond,
                                             const std::string& else_trace) {
  IrOp op;
  op.kind = TraceOp::Kind::kBranchAtm;
  op.cond = cond;
  op.target = else_trace;
  ops_.push_back(std::move(op));
  return *this;
}

TraceBuilder& TraceBuilder::trans(accel::DataFormat from,
                                  accel::DataFormat to) {
  IrOp op;
  op.kind = TraceOp::Kind::kTransform;
  op.from = from;
  op.to = to;
  ops_.push_back(std::move(op));
  return *this;
}

TraceBuilder& TraceBuilder::notify_cont() {
  IrOp op;
  op.kind = TraceOp::Kind::kNotifyCont;
  ops_.push_back(std::move(op));
  return *this;
}

AtmAddr TraceBuilder::end_notify(const std::string& name) {
  IrOp term;
  term.kind = TraceOp::Kind::kEndNotify;
  return finalize(name, std::move(term));
}

AtmAddr TraceBuilder::tail(const std::string& name,
                           const std::string& next_trace, RemoteKind remote) {
  IrOp term;
  term.kind = TraceOp::Kind::kTail;
  term.target = next_trace;
  term.remote = remote;
  return finalize(name, std::move(term));
}

std::uint8_t TraceBuilder::ir_nibbles(const IrOp& op) {
  std::uint8_t n = op_nibbles(op.kind);
  for (const IrOp& b : op.body) n += ir_nibbles(b);
  return n;
}

void TraceBuilder::encode_ir(Trace& t, const IrOp& op) {
  bool ok = true;
  switch (op.kind) {
    case TraceOp::Kind::kInvoke:
      ok = append_invoke(t, op.accel);
      break;
    case TraceOp::Kind::kBranchSkip: {
      std::uint8_t body_nibbles = 0;
      for (const IrOp& b : op.body) body_nibbles += ir_nibbles(b);
      ok = append_branch_skip(t, op.cond, body_nibbles);
      for (const IrOp& b : op.body) encode_ir(t, b);
      break;
    }
    case TraceOp::Kind::kBranchAtm:
      ok = append_branch_atm(t, op.cond, lib_.reserve(op.target));
      break;
    case TraceOp::Kind::kTransform:
      ok = append_transform(t, op.from, op.to);
      break;
    case TraceOp::Kind::kNotifyCont:
      ok = append_notify_cont(t);
      break;
    case TraceOp::Kind::kTail:
      ok = append_tail(t, lib_.reserve(op.target));
      break;
    case TraceOp::Kind::kEndNotify:
      ok = append_end_notify(t);
      break;
  }
  assert(ok && "layout pass guaranteed the op fits");
  (void)ok;
}

AtmAddr TraceBuilder::finalize(const std::string& name, IrOp terminator) {
  // Layout pass: pack ops greedily into 16-nibble traces. When a word
  // overflows, pop ops off its tail until a TAIL op (3 nibbles) fits, and
  // carry the popped ops into the next subtrace — so a sequence that fits
  // exactly in one word is never split needlessly.
  struct Pending {
    std::string name;
    std::vector<const IrOp*> ops;
    std::uint8_t used = 0;
  };
  constexpr std::uint8_t kTailNibbles = 3;

  std::vector<Pending> words;
  words.push_back({name, {}, 0});
  int split = 0;
  std::vector<const IrOp*> pending;
  for (const IrOp& op : ops_) pending.push_back(&op);
  pending.push_back(&terminator);

  for (std::size_t i = 0; i < pending.size(); ++i) {
    const IrOp* op = pending[i];
    const std::uint8_t need = ir_nibbles(*op);
    if (need + kTailNibbles > kMaxNibbles) {
      throw std::runtime_error("op too large for any trace in '" + name +
                               "'");
    }
    Pending& word = words.back();
    if (word.used + need <= kMaxNibbles) {
      word.ops.push_back(op);
      word.used += need;
      continue;
    }
    // Overflow: make room for the TAIL in the current word, pushing its
    // displaced ops (and this one) into a fresh subtrace.
    std::vector<const IrOp*> carry;
    while (!word.ops.empty() && word.used + kTailNibbles > kMaxNibbles) {
      carry.insert(carry.begin(), word.ops.back());
      word.used -= ir_nibbles(*word.ops.back());
      word.ops.pop_back();
    }
    carry.push_back(op);
    words.push_back({name + "#" + std::to_string(++split), {}, 0});
    Pending& next = words.back();
    for (const IrOp* c : carry) {
      next.ops.push_back(c);
      next.used += ir_nibbles(*c);
      if (next.used > kMaxNibbles) {
        throw std::runtime_error("subtrace overflow in '" + name + "'");
      }
    }
  }

  // Encode each word; non-final words end with TAIL to the next word.
  AtmAddr first = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    Trace t;
    for (const IrOp* op : words[i].ops) encode_ir(t, *op);
    if (i + 1 < words.size()) {
      const bool ok = append_tail(t, lib_.reserve(words[i + 1].name));
      assert(ok);
      (void)ok;
    }
    const AtmAddr addr = lib_.add(words[i].name, t);
    if (i == 0) first = addr;
  }
  // Remote-wait metadata attaches to the TAIL target.
  if (terminator.kind == TraceOp::Kind::kTail &&
      terminator.remote != RemoteKind::kNone) {
    lib_.set_remote(lib_.reserve(terminator.target), terminator.remote);
  }
  ops_.clear();
  return first;
}

}  // namespace accelflow::core
