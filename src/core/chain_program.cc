#include "core/chain_program.h"

#include <cstdlib>
#include <cstring>

namespace accelflow::core {

bool af_compile_enabled() {
  const char* v = std::getenv("AF_COMPILE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

ChainProgram::ChainProgram(const TraceLibrary& lib) {
  // Seed every possible entry point: each invoke decodable at any of the
  // 16 nibble positions of a library word contributes a (word, post-invoke
  // mark) entry. Garbage decodes yield dead entries — never looked up,
  // because runtime keys always come from a real invoke decode.
  for (const AtmAddr addr : lib.addresses()) {
    const std::uint64_t word = lib.get(addr).word;
    auto [it, inserted] = index_.try_emplace(word);
    if (inserted) it->second.fill(-1);
    for (std::uint8_t pm = 0; pm < 16; ++pm) {
      const TraceOp op = decode_op(word, pm);
      if (op.kind != TraceOp::Kind::kInvoke) continue;
      std::int32_t& entry = it->second[pm_bucket(op.next_pm)];
      if (entry >= 0) continue;  // Seeded by an earlier decode.
      entry = static_cast<std::int32_t>(entries_.size());
      auto& combos = entries_.emplace_back();
      for (std::size_t f = 0; f < combos.size(); ++f) {
        combos[f] = compile_block(lib, word, op.next_pm, flags_of(f));
      }
    }
  }
  // Second pass: resolve each forwarding block's successor entry, so the
  // executor follows a chain hop-to-hop by index without re-hashing the
  // trace word (Block::succ_entry).
  for (Block& b : blocks_) {
    if (b.terminal != Terminal::kInvoke && b.terminal != Terminal::kTailArmed) {
      continue;
    }
    const auto it = index_.find(b.out_word);
    if (it == index_.end()) continue;
    b.succ_entry = it->second[pm_bucket(b.out_pm)];
  }
}

std::int32_t ChainProgram::compile_block(const TraceLibrary& lib,
                                         std::uint64_t word, std::uint8_t pm,
                                         accel::PayloadFlags flags) {
  Block b;
  const auto bail = [&] {
    // Fallback is all-or-nothing: a kInterpret block carries no micro-ops,
    // so the engine decides before replaying any side effect.
    b.ops.clear();
    b.terminal = Terminal::kInterpret;
    ++interpret_blocks_;
    blocks_.push_back(std::move(b));
    return static_cast<std::int32_t>(blocks_.size() - 1);
  };

  std::uint64_t cur_word = word;
  std::uint8_t cur_pm = pm;
  for (int steps = 0;; ++steps) {
    if (steps >= kMaxCompileSteps) return bail();
    const TraceOp op = decode_op(cur_word, cur_pm);
    switch (op.kind) {
      case TraceOp::Kind::kInvoke: {
        b.terminal = Terminal::kInvoke;
        b.accel = op.accel;
        b.out_word = cur_word;
        b.out_pm = op.next_pm;
        blocks_.push_back(std::move(b));
        return static_cast<std::int32_t>(blocks_.size() - 1);
      }
      case TraceOp::Kind::kBranchSkip: {
        b.has_branch = true;
        b.ops.push_back(MicroOp{MicroOp::Kind::kBranch, 0,
                                accel::DataFormat::kString});
        cur_pm = op.next_pm;
        if (!eval_condition(op.cond, flags)) cur_pm += op.skip;
        break;
      }
      case TraceOp::Kind::kBranchAtm: {
        b.has_branch = true;
        if (eval_condition(op.cond, flags)) {
          b.ops.push_back(MicroOp{MicroOp::Kind::kBranch, 0,
                                  accel::DataFormat::kString});
          cur_pm = op.next_pm;
        } else {
          if (!lib.stored(op.atm)) return bail();
          b.ops.push_back(MicroOp{MicroOp::Kind::kBranchAtmLoad, op.atm,
                                  accel::DataFormat::kString});
          cur_word = lib.get(op.atm).word;
          cur_pm = 0;
        }
        break;
      }
      case TraceOp::Kind::kTransform: {
        b.has_transform = true;
        b.ops.push_back(MicroOp{MicroOp::Kind::kTransform, 0, op.to});
        cur_pm = op.next_pm;
        break;
      }
      case TraceOp::Kind::kNotifyCont: {
        b.ops.push_back(MicroOp{MicroOp::Kind::kNotify, 0,
                                accel::DataFormat::kString});
        cur_pm = op.next_pm;
        break;
      }
      case TraceOp::Kind::kTail: {
        b.has_eot = true;
        if (!lib.stored(op.atm)) return bail();
        b.ops.push_back(MicroOp{MicroOp::Kind::kTailFetch, op.atm,
                                accel::DataFormat::kString});
        const RemoteKind kind = lib.remote_of(op.atm);
        cur_word = lib.get(op.atm).word;
        cur_pm = 0;
        if (kind == RemoteKind::kNone) break;  // Inline: keep fusing.
        // Armed network wait: the receive trace parks in its first
        // accelerator's input queue (the engine asserts it starts with an
        // invoke; anything else is not replayable).
        const TraceOp first = decode_op(cur_word, 0);
        if (first.kind != TraceOp::Kind::kInvoke) return bail();
        b.terminal = Terminal::kTailArmed;
        b.accel = first.accel;
        b.out_word = cur_word;
        b.out_pm = first.next_pm;
        b.wait_kind = kind;
        blocks_.push_back(std::move(b));
        return static_cast<std::int32_t>(blocks_.size() - 1);
      }
      case TraceOp::Kind::kEndNotify: {
        b.has_eot = true;
        b.terminal = Terminal::kEndNotify;
        blocks_.push_back(std::move(b));
        return static_cast<std::int32_t>(blocks_.size() - 1);
      }
    }
  }
}

}  // namespace accelflow::core
