#ifndef ACCELFLOW_CORE_TRACE_BUILDER_H_
#define ACCELFLOW_CORE_TRACE_BUILDER_H_

#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/trace_library.h"

/**
 * @file
 * The AccelFlow programming API (Section V.4): programmers construct traces
 * with seq / branch / trans, then register them by name. Mirrors the
 * paper's Listing 1:
 *
 *   TraceBuilder b(lib);
 *   b.seq({kTcp, kDecr, kRpc, kDser});
 *   b.branch(BranchCond::kCompressed, [](TraceBuilder& then) {
 *     then.trans(kJson, kString);
 *     then.seq({kDcmp});
 *   });
 *   b.seq({kLdb});
 *   b.end_notify("func_req");
 *
 * If the accumulated ops exceed one 8-byte trace, the builder transparently
 * splits the sequence into ATM-chained subtraces (Section IV-A's "If a
 * sequence exceeds 8 bytes, AccelFlow would split it into multiple
 * subtraces"); a branch body is atomic and never straddles a split.
 */

namespace accelflow::core {

/** Builds one named trace (or subtrace chain) into a TraceLibrary. */
class TraceBuilder {
 public:
  explicit TraceBuilder(TraceLibrary& lib) : lib_(lib) {}

  /** Appends a linear chain of accelerator invocations. */
  TraceBuilder& seq(std::initializer_list<accel::AccelType> accels);
  TraceBuilder& seq(accel::AccelType a) { return seq({a}); }

  /**
   * Appends a conditional region: the ops recorded by `then` execute only
   * when `cond` evaluates true (a BR_SKIP over the region otherwise).
   */
  TraceBuilder& branch(BranchCond cond,
                       const std::function<void(TraceBuilder&)>& then);

  /**
   * Appends a major-divergence branch: when `cond` is FALSE, execution
   * continues at the named trace (loaded from the ATM); when TRUE it
   * continues inline. The target may be registered later (forward ref).
   */
  TraceBuilder& branch_else_goto(BranchCond cond,
                                 const std::string& else_trace);

  /** Appends a data-format transformation executed by the dispatcher DTE. */
  TraceBuilder& trans(accel::DataFormat from, accel::DataFormat to);

  /** Notifies the initiating core and keeps executing (T6's fan-out). */
  TraceBuilder& notify_cont();

  /**
   * Terminates with END_NOTIFY and registers the trace under `name`.
   * @return the ATM address of the (first) trace.
   */
  AtmAddr end_notify(const std::string& name);

  /**
   * Terminates with TAIL -> `next_trace` and registers under `name`.
   * @param remote what the arrival at `next_trace` waits for (kNone chains
   *        immediately).
   */
  AtmAddr tail(const std::string& name, const std::string& next_trace,
               RemoteKind remote = RemoteKind::kNone);

 private:
  /** Intermediate representation, laid out into words at registration. */
  struct IrOp {
    TraceOp::Kind kind;
    accel::AccelType accel{};
    BranchCond cond{};
    accel::DataFormat from{}, to{};
    std::string target;              ///< branch_else_goto / tail name.
    std::vector<IrOp> body;          ///< branch(then) region.
    RemoteKind remote = RemoteKind::kNone;
  };

  /** Nibble size of an op including a branch body. */
  static std::uint8_t ir_nibbles(const IrOp& op);
  /** Encodes `op` into `t`; the caller guarantees it fits. */
  void encode_ir(Trace& t, const IrOp& op);

  AtmAddr finalize(const std::string& name, IrOp terminator);

  TraceLibrary& lib_;
  std::vector<IrOp> ops_;
};

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_TRACE_BUILDER_H_
