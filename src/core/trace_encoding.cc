#include "core/trace_encoding.h"

#include <cstdio>

namespace accelflow::core {

namespace {

/** Appends one raw nibble if it fits. */
bool push_nibble(Trace& t, std::uint8_t v) {
  if (t.len >= kMaxNibbles) return false;
  t.word = with_nibble(t.word, t.len, v);
  ++t.len;
  return true;
}

bool push_nibbles(Trace& t, std::initializer_list<std::uint8_t> vs) {
  if (t.len + vs.size() > kMaxNibbles) return false;
  for (const std::uint8_t v : vs) push_nibble(t, v);
  return true;
}

}  // namespace

bool append_invoke(Trace& t, accel::AccelType a) {
  // INVOKE nibbles are 0x0..0x8; anything past the last accelerator would
  // alias a control opcode.
  if (static_cast<std::uint8_t>(a) > 0x8) return false;
  return push_nibble(t, static_cast<std::uint8_t>(a));
}

bool append_branch_skip(Trace& t, BranchCond c, std::uint32_t skip) {
  // The skip count occupies one nibble; a larger value would silently
  // wrap to a different (shorter) skip.
  if (skip > 0xF) return false;
  return push_nibbles(
      t, {static_cast<std::uint8_t>(TraceOpcode::kBranchSkip),
          static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(skip)});
}

bool append_branch_atm(Trace& t, BranchCond c, std::uint32_t addr) {
  // The ATM address is 8 bits (256 trace slots); addr >= 256 would be
  // truncated into a *valid but wrong* slot, so reject it instead.
  if (addr > 0xFF) return false;
  return push_nibbles(t, {static_cast<std::uint8_t>(TraceOpcode::kBranchAtm),
                          static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(addr & 0xF),
                          static_cast<std::uint8_t>(addr >> 4)});
}

bool append_transform(Trace& t, accel::DataFormat from, accel::DataFormat to) {
  // Each format code is a 2-bit field of the packed nibble.
  if (static_cast<std::uint8_t>(from) > 0x3 ||
      static_cast<std::uint8_t>(to) > 0x3) {
    return false;
  }
  const auto packed = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(from) << 2) | static_cast<std::uint8_t>(to));
  return push_nibbles(
      t, {static_cast<std::uint8_t>(TraceOpcode::kTransform), packed});
}

bool append_tail(Trace& t, std::uint32_t addr) {
  // Same 8-bit ATM address field as BR_ATM.
  if (addr > 0xFF) return false;
  return push_nibbles(t, {static_cast<std::uint8_t>(TraceOpcode::kTail),
                          static_cast<std::uint8_t>(addr & 0xF),
                          static_cast<std::uint8_t>(addr >> 4)});
}

bool append_end_notify(Trace& t) {
  return push_nibble(t, static_cast<std::uint8_t>(TraceOpcode::kEndNotify));
}

bool append_notify_cont(Trace& t) {
  return push_nibble(t, static_cast<std::uint8_t>(TraceOpcode::kNotifyCont));
}

TraceOp decode_op(std::uint64_t word, std::uint8_t pm) {
  TraceOp op;
  if (pm >= kMaxNibbles) {
    op.kind = TraceOp::Kind::kEndNotify;
    op.next_pm = pm;
    return op;
  }
  const std::uint8_t n = nibble_at(word, pm);
  if (n <= 0x8) {
    op.kind = TraceOp::Kind::kInvoke;
    op.accel = static_cast<accel::AccelType>(n);
    op.next_pm = pm + 1;
    return op;
  }
  switch (static_cast<TraceOpcode>(n)) {
    case TraceOpcode::kBranchSkip:
      op.kind = TraceOp::Kind::kBranchSkip;
      op.cond = static_cast<BranchCond>(nibble_at(word, pm + 1));
      op.skip = nibble_at(word, pm + 2);
      op.next_pm = pm + 3;
      return op;
    case TraceOpcode::kBranchAtm:
      op.kind = TraceOp::Kind::kBranchAtm;
      op.cond = static_cast<BranchCond>(nibble_at(word, pm + 1));
      op.atm = static_cast<AtmAddr>(nibble_at(word, pm + 2) |
                                    (nibble_at(word, pm + 3) << 4));
      op.next_pm = pm + 4;
      return op;
    case TraceOpcode::kTransform: {
      op.kind = TraceOp::Kind::kTransform;
      const std::uint8_t packed = nibble_at(word, pm + 1);
      op.from = static_cast<accel::DataFormat>((packed >> 2) & 0x3);
      op.to = static_cast<accel::DataFormat>(packed & 0x3);
      op.next_pm = pm + 2;
      return op;
    }
    case TraceOpcode::kTail:
      op.kind = TraceOp::Kind::kTail;
      op.atm = static_cast<AtmAddr>(nibble_at(word, pm + 1) |
                                    (nibble_at(word, pm + 2) << 4));
      op.next_pm = pm + 3;
      return op;
    case TraceOpcode::kEndNotify:
      op.kind = TraceOp::Kind::kEndNotify;
      op.next_pm = pm + 1;
      return op;
    case TraceOpcode::kNotifyCont:
      op.kind = TraceOp::Kind::kNotifyCont;
      op.next_pm = pm + 1;
      return op;
    case TraceOpcode::kPad:
      break;
  }
  // PAD (or malformed): treat as end-of-trace with notification.
  op.kind = TraceOp::Kind::kEndNotify;
  op.next_pm = pm + 1;
  return op;
}

std::vector<TraceOp> decode_all(const Trace& t) {
  std::vector<TraceOp> ops;
  std::uint8_t pm = 0;
  while (pm < t.len) {
    TraceOp op = decode_op(t.word, pm);
    ops.push_back(op);
    if (op.kind == TraceOp::Kind::kTail ||
        op.kind == TraceOp::Kind::kEndNotify) {
      break;
    }
    pm = op.next_pm;
  }
  return ops;
}

bool validate(const Trace& t, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (t.len > kMaxNibbles) return fail("length exceeds 16 nibbles");
  if (t.len == 0) return fail("empty trace");

  std::uint8_t pm = 0;
  bool terminated = false;
  while (pm < t.len) {
    const std::uint8_t raw = nibble_at(t.word, pm);
    if (raw == static_cast<std::uint8_t>(TraceOpcode::kPad)) {
      return fail("PAD nibble before the terminator");
    }
    const TraceOp op = decode_op(t.word, pm);
    if (op.next_pm > t.len) return fail("op truncated by trace end");
    switch (op.kind) {
      case TraceOp::Kind::kBranchSkip:
        if (static_cast<std::size_t>(op.cond) >= kNumBranchConds) {
          return fail("invalid branch condition code");
        }
        if (op.next_pm + op.skip > t.len) {
          return fail("BR_SKIP target out of range");
        }
        break;
      case TraceOp::Kind::kBranchAtm:
        if (static_cast<std::size_t>(op.cond) >= kNumBranchConds) {
          return fail("invalid branch condition code");
        }
        break;
      case TraceOp::Kind::kTail:
      case TraceOp::Kind::kEndNotify:
        if (op.next_pm != t.len) {
          return fail("terminator is not the last op");
        }
        terminated = true;
        break;
      default:
        break;
    }
    if (terminated) break;
    pm = op.next_pm;
  }
  if (!terminated) return fail("trace lacks a TAIL or END_NOTIFY terminator");
  // All nibbles beyond len must be PAD (0xF) in a canonically-encoded word.
  for (std::uint8_t i = t.len; i < kMaxNibbles; ++i) {
    if (nibble_at(t.word, i) != 0) {
      // The builder zero-fills; accept zero padding only.
      return fail("non-zero padding after the terminator");
    }
  }
  return true;
}

std::string to_string(const Trace& t) {
  std::string out;
  char buf[64];
  for (const TraceOp& op : decode_all(t)) {
    if (!out.empty()) out += ' ';
    switch (op.kind) {
      case TraceOp::Kind::kInvoke:
        out += name_of(op.accel);
        break;
      case TraceOp::Kind::kBranchSkip:
        std::snprintf(buf, sizeof(buf), "BR(%s,+%u)",
                      std::string(name_of(op.cond)).c_str(), op.skip);
        out += buf;
        break;
      case TraceOp::Kind::kBranchAtm:
        std::snprintf(buf, sizeof(buf), "BR(%s,@%u)",
                      std::string(name_of(op.cond)).c_str(), op.atm);
        out += buf;
        break;
      case TraceOp::Kind::kTransform:
        std::snprintf(buf, sizeof(buf), "XF(%s->%s)",
                      std::string(name_of(op.from)).c_str(),
                      std::string(name_of(op.to)).c_str());
        out += buf;
        break;
      case TraceOp::Kind::kTail:
        std::snprintf(buf, sizeof(buf), "TAIL(@%u)", op.atm);
        out += buf;
        break;
      case TraceOp::Kind::kEndNotify:
        out += "END";
        break;
      case TraceOp::Kind::kNotifyCont:
        out += "NOTIFY+";
        break;
    }
  }
  return out;
}

}  // namespace accelflow::core
