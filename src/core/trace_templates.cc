#include "core/trace_templates.h"

#include "core/trace_builder.h"

namespace accelflow::core {

using accel::AccelType;
using accel::DataFormat;

TraceTemplates register_templates(TraceLibrary& lib) {
  TraceTemplates t{};

  // T2 (Figure 2a): send a function response.
  //   Ser -> RPC -> Encr -> TCP, then notify the core.
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kRpc, AccelType::kEncr,
           AccelType::kTcp});
    t.t2 = b.end_notify("T2");
  }

  // T3: T2 with compression, chosen by the CPU (no branch needed: "there is
  // no branch because the CPU core knows that it needs to compress").
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kCmp, AccelType::kSer, AccelType::kRpc,
           AccelType::kEncr, AccelType::kTcp});
    t.t3 = b.end_notify("T3");
  }

  // T1 (Figure 4a): receive a function request. The payload may be
  // compressed; that is only known after deserialization, when the Dser
  // output dispatcher evaluates the branch. The Dcmp path also needs a
  // JSON -> string format change (Listing 1).
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kTcp, AccelType::kDecr, AccelType::kRpc,
           AccelType::kDser});
    b.branch(BranchCond::kCompressed, [](TraceBuilder& then) {
      then.trans(DataFormat::kJson, DataFormat::kString);
      then.seq({AccelType::kDcmp});
    });
    b.seq({AccelType::kLdb});
    t.t1 = b.end_notify("T1");
  }

  // T7: receive the acknowledgement of a write to the DB cache or the DB.
  // The response may carry an exception, in which case the ensemble itself
  // reports the error to the user (the rarely-taken four-accelerator error
  // subsequence lives in its own trace, per Section IV-A).
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kRpc, AccelType::kEncr,
           AccelType::kTcp});
    t.t7err = b.end_notify("T7err");
  }
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kTcp, AccelType::kDecr, AccelType::kDser});
    b.branch_else_goto(BranchCond::kNoException, "T7err");
    b.seq({AccelType::kLdb});
    t.t7 = b.end_notify("T7");
  }

  // T8 / T8c: send a write request to the DB cache or DB, then wait for
  // the acknowledgement (T7).
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kEncr, AccelType::kTcp});
    t.t8 = b.tail("T8", "T7", RemoteKind::kDbWrite);
  }
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kCmp, AccelType::kSer, AccelType::kEncr,
           AccelType::kTcp});
    t.t8c = b.tail("T8c", "T7", RemoteKind::kDbWrite);
  }

  // T6 (Figure 7): receive the response of a read from the DB. If the key
  // was not found, report the error (T6err). Otherwise decompress if
  // needed, hand the value to the CPU (NOTIFY_CONT), and in parallel write
  // it back into the DB cache (T6wb) — recompressing first if the cache
  // stores compressed values (C-Compressed test).
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kRpc, AccelType::kEncr,
           AccelType::kTcp});
    t.t6err = b.end_notify("T6err");
  }
  {
    TraceBuilder b(lib);
    b.branch(BranchCond::kCCompressed, [](TraceBuilder& then) {
      then.seq({AccelType::kCmp});
    });
    b.seq({AccelType::kSer, AccelType::kEncr, AccelType::kTcp});
    t.t6wb = b.tail("T6wb", "T7", RemoteKind::kDbWrite);
  }
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kTcp, AccelType::kDecr, AccelType::kDser});
    b.branch_else_goto(BranchCond::kFound, "T6err");
    b.branch(BranchCond::kCompressed, [](TraceBuilder& then) {
      then.seq({AccelType::kDcmp});
    });
    b.notify_cont();
    t.t6 = b.tail("T6", "T6wb");
  }

  // T5 (Figures 2b / 4b / 7): receive the response of a read from the DB
  // cache. On a hit, the (possibly compressed) value goes to a core via
  // LdB; on a miss a read must be sent to the actual DB (T5miss), whose
  // response arrives as T6.
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kEncr, AccelType::kTcp});
    t.t5miss = b.tail("T5miss", "T6", RemoteKind::kDbRead);
  }
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kTcp, AccelType::kDecr, AccelType::kDser});
    b.branch_else_goto(BranchCond::kHit, "T5miss");
    b.branch(BranchCond::kCompressed, [](TraceBuilder& then) {
      then.seq({AccelType::kDcmp});
    });
    b.seq({AccelType::kLdb});
    t.t5 = b.end_notify("T5");
  }

  // T4 (Figure 2b): send a read request to the DB cache and arm T5 on the
  // same TCP accelerator (the asterisk in the figure).
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kEncr, AccelType::kTcp});
    t.t4 = b.tail("T4", "T5", RemoteKind::kDbCacheRead);
  }

  // T10: receive an RPC response; exceptions are handled as in T7, and the
  // payload may need decompression.
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kRpc, AccelType::kEncr,
           AccelType::kTcp});
    t.t10err = b.end_notify("T10err");
  }
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kTcp, AccelType::kDecr, AccelType::kRpc,
           AccelType::kDser});
    b.branch_else_goto(BranchCond::kNoException, "T10err");
    b.branch(BranchCond::kCompressed, [](TraceBuilder& then) {
      then.seq({AccelType::kDcmp});
    });
    b.seq({AccelType::kLdb});
    t.t10 = b.end_notify("T10");
  }

  // T9 / T9c: send an RPC request to another service.
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kRpc, AccelType::kEncr,
           AccelType::kTcp});
    t.t9 = b.tail("T9", "T10", RemoteKind::kNestedRpc);
  }
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kCmp, AccelType::kSer, AccelType::kRpc,
           AccelType::kEncr, AccelType::kTcp});
    t.t9c = b.tail("T9c", "T10", RemoteKind::kNestedRpc);
  }

  // T12: receive an HTTP response; "errors are taken care of by the CPU",
  // so there is no exception branch here.
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kTcp, AccelType::kDecr, AccelType::kDser});
    b.branch(BranchCond::kCompressed, [](TraceBuilder& then) {
      then.seq({AccelType::kDcmp});
    });
    b.seq({AccelType::kLdb});
    t.t12 = b.end_notify("T12");
  }

  // T11 / T11c: send an HTTP request.
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kSer, AccelType::kEncr, AccelType::kTcp});
    t.t11 = b.tail("T11", "T12", RemoteKind::kHttp);
  }
  {
    TraceBuilder b(lib);
    b.seq({AccelType::kCmp, AccelType::kSer, AccelType::kEncr,
           AccelType::kTcp});
    t.t11c = b.tail("T11c", "T12", RemoteKind::kHttp);
  }

  return t;
}

}  // namespace accelflow::core
