#include "core/cpu_executor.h"

#include <cassert>

#include "core/validation_hooks.h"

namespace accelflow::core {

struct CpuChainExecutor::Run {
  ChainContext* ctx = nullptr;
  std::vector<LogicalOp> ops;
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  std::function<void(bool)> done;
};

CpuChainExecutor::CpuChainExecutor(Machine& machine,
                                   sim::TimePs response_timeout)
    : machine_(machine), timeout_(response_timeout) {}

sim::TimePs CpuChainExecutor::cpu_transform_time(std::uint64_t bytes) const {
  // Software format conversion streams the payload at ~2 GB/s on a core.
  return static_cast<sim::TimePs>(static_cast<double>(bytes) / 2e9 * 1e12);
}

void CpuChainExecutor::run(ChainContext* ctx, std::vector<LogicalOp> ops,
                           std::uint64_t payload_bytes,
                           std::function<void(bool)> done) {
  ++stats_.chains;
  auto r = std::make_shared<Run>();
  r->ctx = ctx;
  r->ops = std::move(ops);
  r->bytes = payload_bytes;
  r->done = std::move(done);
  step(std::move(r));
}

void CpuChainExecutor::step(std::shared_ptr<Run> r) {
  // Coalesce compute ops into one core segment until a network wait or the
  // end of the op list.
  ChainContext* ctx = r->ctx;
  const double tax_speed = machine_.cores().params().tax_speed;
  sim::TimePs segment = 0;
  while (r->i < r->ops.size()) {
    const LogicalOp& op = r->ops[r->i];
    bool stop = false;
    switch (op.kind) {
      case LogicalOp::Kind::kInvoke:
        segment += static_cast<sim::TimePs>(
            static_cast<double>(
                ctx->env->op_cpu_cost(*ctx, op.accel, r->bytes)) /
            tax_speed);
        if (ValidationHooks* v = machine_.checker()) {
          v->on_stage(*ctx, op.accel, r->bytes, /*on_cpu=*/true);
        }
        r->bytes = ctx->env->transformed_size(op.accel, r->bytes);
        ++ctx->accel_invocations;
        ++stats_.ops;
        break;
      case LogicalOp::Kind::kBranchResolve:
        // A couple of compares: negligible but non-zero.
        segment += machine_.cores().cycles(20);
        ++ctx->branches;
        break;
      case LogicalOp::Kind::kTransform:
        segment += static_cast<sim::TimePs>(
            static_cast<double>(cpu_transform_time(r->bytes)) / tax_speed);
        ++ctx->transforms;
        break;
      case LogicalOp::Kind::kNotifyCont:
        ++ctx->mid_notifies;
        break;
      case LogicalOp::Kind::kRemoteWait:
        stop = true;
        break;
    }
    if (stop) break;
    ++r->i;
  }

  stats_.cpu_time += segment;
  const bool at_wait = r->i < r->ops.size();

  auto after_segment = [this, r]() mutable {
    ChainContext* ctx = r->ctx;
    if (r->i >= r->ops.size()) {
      const auto done = std::move(r->done);
      if (done) done(false);
      return;
    }
    // Network wait: the core is released; resume on response arrival.
    const LogicalOp& op = r->ops[r->i];
    ++ctx->remote_calls;
    const RemoteKind nested_kind = op.remote;
    auto nested_deliver = [this, r](std::uint64_t bytes) mutable {
      r->bytes = bytes;
      step(std::move(r));
    };
    // Nested RPCs to colocated services: the callee runs on this machine.
    std::size_t next_i = r->i + 1;
    if (ctx->env->nested_call(*ctx, nested_kind,
                              [r, next_i, nested_deliver](
                                  std::uint64_t bytes) mutable {
                                r->i = next_i;
                                nested_deliver(bytes);
                              })) {
      return;
    }
    const sim::TimePs latency = ctx->env->remote_latency(*ctx, op.remote);
    if (latency > timeout_) {
      ++stats_.timeouts;
      machine_.sim().schedule_after(timeout_, [r] {
        if (r->done) r->done(true);
      });
      return;
    }
    const RemoteKind kind = op.remote;
    ++r->i;
    machine_.sim().schedule_after(latency, [this, r, kind]() mutable {
      r->bytes = r->ctx->env->response_size(*r->ctx, kind);
      step(std::move(r));
    });
  };

  if (segment == 0) {
    after_segment();
  } else {
    machine_.cores().run_on(ctx->core, segment, after_segment);
  }
  (void)at_wait;
}

}  // namespace accelflow::core
