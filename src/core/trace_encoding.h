#ifndef ACCELFLOW_CORE_TRACE_ENCODING_H_
#define ACCELFLOW_CORE_TRACE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "accel/types.h"

/**
 * @file
 * The binary Trace encoding (Section IV-A).
 *
 * A trace is an 8-byte word interpreted as a stream of 16 four-bit nibbles,
 * walked by a moving Position Mark (PM). Nibble values 0x0..0x8 invoke the
 * corresponding accelerator (the paper's "4 bits per accelerator ... up to
 * 16 accelerator invocations per trace"); the remaining values encode the
 * control operations the output dispatchers execute:
 *
 *   0x0..0x8  INVOKE <accel>          forward to that accelerator
 *   0x9       BR_SKIP <cond> <skip>   if cond is FALSE, PM += skip
 *   0xA       XF <src:2|dst:2>        data-format transformation
 *   0xB       TAIL <addr:8b>          end; load next trace from ATM[addr]
 *   0xC       END_NOTIFY              end; DMA result to memory, notify core
 *   0xD       NOTIFY_CONT             notify core, keep executing
 *   0xE       BR_ATM <cond> <addr:8b> if cond is FALSE, continue at
 *                                     ATM[addr] ("major divergence" split);
 *                                     if TRUE, continue inline
 *   0xF       PAD                     padding after the last op
 *
 * Sequences that need more than 16 nibbles must be split into subtraces
 * chained through the ATM, exactly as the paper prescribes; the TraceBuilder
 * enforces this.
 */

namespace accelflow::core {

/** An encoded trace: the 8-byte word plus its used length in nibbles. */
struct Trace {
  std::uint64_t word = 0;
  std::uint8_t len = 0;  ///< Nibbles used (encoder bookkeeping only).

  friend bool operator==(const Trace&, const Trace&) = default;
};

inline constexpr std::uint8_t kMaxNibbles = 16;

/** Opcode nibbles >= 0x9. */
enum class TraceOpcode : std::uint8_t {
  kBranchSkip = 0x9,
  kTransform = 0xA,
  kTail = 0xB,
  kEndNotify = 0xC,
  kNotifyCont = 0xD,
  kBranchAtm = 0xE,
  kPad = 0xF,
};

/**
 * Branch condition codes (Section VII-B.2 lists exactly these): each tests
 * one field of the payload with a simple compare.
 */
enum class BranchCond : std::uint8_t {
  kCompressed = 0,   ///< Payload is compressed.
  kHit = 1,          ///< DB-cache lookup hit.
  kFound = 2,        ///< DB lookup found the key.
  kNoException = 3,  ///< Remote completed without error.
  kCCompressed = 4,  ///< The DB cache stores compressed values.
};

inline constexpr std::size_t kNumBranchConds = 5;

constexpr std::string_view name_of(BranchCond c) {
  constexpr std::string_view kNames[kNumBranchConds] = {
      "Compressed?", "Hit?", "Found?", "NoException?", "C-Compressed?"};
  return kNames[static_cast<std::size_t>(c)];
}

/** Evaluates a branch condition against the payload's flag fields. */
constexpr bool eval_condition(BranchCond c, const accel::PayloadFlags& f) {
  switch (c) {
    case BranchCond::kCompressed:
      return f.compressed;
    case BranchCond::kHit:
      return f.hit;
    case BranchCond::kFound:
      return f.found;
    case BranchCond::kNoException:
      return !f.exception;
    case BranchCond::kCCompressed:
      return f.c_compressed;
  }
  return false;
}

/** ATM address embedded in TAIL / BR_ATM ops (8 bits: 256 trace slots). */
using AtmAddr = std::uint8_t;

/** A decoded trace operation. */
struct TraceOp {
  enum class Kind : std::uint8_t {
    kInvoke,
    kBranchSkip,
    kBranchAtm,
    kTransform,
    kTail,
    kEndNotify,
    kNotifyCont,
  };
  Kind kind = Kind::kEndNotify;
  accel::AccelType accel = accel::AccelType::kTcp;  ///< kInvoke.
  BranchCond cond = BranchCond::kCompressed;        ///< Branches.
  std::uint8_t skip = 0;                            ///< kBranchSkip.
  AtmAddr atm = 0;                                  ///< kBranchAtm / kTail.
  accel::DataFormat from = accel::DataFormat::kString;  ///< kTransform.
  accel::DataFormat to = accel::DataFormat::kString;    ///< kTransform.
  std::uint8_t next_pm = 0;  ///< PM after consuming this op's nibbles.
};

/** Reads the nibble at index `pm`. */
constexpr std::uint8_t nibble_at(std::uint64_t word, std::uint8_t pm) {
  return static_cast<std::uint8_t>((word >> (pm * 4)) & 0xF);
}

/** Writes nibble `v` at index `pm`. */
constexpr std::uint64_t with_nibble(std::uint64_t word, std::uint8_t pm,
                                    std::uint8_t v) {
  const std::uint64_t mask = ~(std::uint64_t{0xF} << (pm * 4));
  return (word & mask) | (static_cast<std::uint64_t>(v & 0xF) << (pm * 4));
}

// --- Encoding (used by the TraceBuilder) ---------------------------------
// Each append_* returns false if the op does not fit in the trace word OR
// if an operand exceeds its field width. Operands are taken at full width
// (std::uint32_t) so callers cannot silently narrow an out-of-range value
// before the encoder sees it: an ATM address >= 256, a skip count > 15, or
// a format/accelerator code past its enum range is rejected, never
// truncated into a different-but-valid encoding.

bool append_invoke(Trace& t, accel::AccelType a);
bool append_branch_skip(Trace& t, BranchCond c, std::uint32_t skip);
bool append_branch_atm(Trace& t, BranchCond c, std::uint32_t addr);
bool append_transform(Trace& t, accel::DataFormat from, accel::DataFormat to);
bool append_tail(Trace& t, std::uint32_t addr);
bool append_end_notify(Trace& t);
bool append_notify_cont(Trace& t);

/** Nibble cost of each op kind (for the builder's fit checks). */
constexpr std::uint8_t op_nibbles(TraceOp::Kind k) {
  switch (k) {
    case TraceOp::Kind::kInvoke:
    case TraceOp::Kind::kEndNotify:
    case TraceOp::Kind::kNotifyCont:
      return 1;
    case TraceOp::Kind::kTransform:
      return 2;
    case TraceOp::Kind::kBranchSkip:
    case TraceOp::Kind::kTail:
      return 3;
    case TraceOp::Kind::kBranchAtm:
      return 4;
  }
  return 1;
}

// --- Decoding (used by the output dispatchers) ----------------------------

/**
 * Decodes the op at position `pm`.
 *
 * Running past the last explicit op (into PAD nibbles or off the end of the
 * word) decodes as END_NOTIFY: a trace that does not say what comes next
 * returns control to the CPU.
 */
TraceOp decode_op(std::uint64_t word, std::uint8_t pm);

/** Decodes a whole trace into its op list (tools/tests; not the hot path). */
std::vector<TraceOp> decode_all(const Trace& t);

/**
 * Validates structural well-formedness:
 *  - every op fits within the word,
 *  - skip targets stay in range,
 *  - TAIL / END_NOTIFY is the last op,
 *  - only PAD nibbles follow the terminator.
 *
 * @param error if non-null, receives a description of the first violation.
 */
bool validate(const Trace& t, std::string* error = nullptr);

/** Human-readable disassembly, e.g. "TCP Decr BR(Compressed?,+2) Dcmp ...". */
std::string to_string(const Trace& t);

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_TRACE_ENCODING_H_
