#ifndef ACCELFLOW_CORE_TRACE_DOT_H_
#define ACCELFLOW_CORE_TRACE_DOT_H_

#include <string>

#include "core/trace_library.h"

/**
 * @file
 * Graphviz export of trace chains: renders the accelerator call graph the
 * way the paper draws Figures 2, 4 and 7 — boxes for accelerator
 * invocations, diamonds for branch conditions, dashed edges for ATM
 * continuations, and annotated network waits.
 */

namespace accelflow::core {

/**
 * Renders the chain starting at `start` (following TAIL and both branch
 * directions) as a Graphviz digraph.
 *
 * @param max_traces cycle guard.
 */
std::string chain_to_dot(const TraceLibrary& lib, AtmAddr start,
                         int max_traces = 64);

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_TRACE_DOT_H_
