#ifndef ACCELFLOW_CORE_ENGINE_H_
#define ACCELFLOW_CORE_ENGINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "accel/accelerator.h"
#include "core/chain.h"
#include "core/chain_program.h"
#include "core/machine.h"
#include "core/trace_analysis.h"
#include "core/tenant_mba.h"
#include "core/trace_library.h"
#include "core/validation_hooks.h"
#include "qos/policy.h"
#include "sim/pool.h"
#include "stats/summary.h"

/**
 * @file
 * The AccelFlow execution engine: the output-dispatcher FSM of Figure 8,
 * the user-mode Enqueue path with retry/fallback (starvation freedom), the
 * overflow path (deadlock freedom), ATM continuation loading, network-wait
 * arming with timeouts, per-tenant trace throttling (Section IV-D), and
 * soft-SLO deadline propagation (Section IV-C).
 *
 * Ablation flags reproduce the Figure 13 ladder: with dispatcher_branches
 * off, branch resolution round-trips to the centralized hardware manager
 * ("Direct"); with dispatcher_transforms off, data transformations and
 * large-payload handling do too ("CntrFlow"). zero_overhead gives the
 * "Ideal" system of Figure 14.
 */

namespace accelflow::core {

/**
 * Resilience policy for fault-injected runs (DESIGN.md §14).
 *
 * The engine arms a per-chain hop watchdog whenever a fault sink is
 * attached to the machine (Machine::fault_hooks()): if a hop produces no
 * output within the timeout and the chain is no longer held by any
 * accelerator, the hop is declared lost (a PE hard-failure consumed the
 * entry) and re-issued with exponential backoff; after `hop_retries`
 * losses the chain continues on the CPU, which always completes. A
 * slow-but-alive hop (still queued, executing, or overflowed) is never
 * re-issued — the watchdog just re-arms with a doubled timeout.
 *
 * Repeated losses on one accelerator drive a per-type health state
 * machine: Healthy -> Unhealthy after `unhealthy_threshold` consecutive
 * losses (new work re-routes to the CPU for `quarantine_us`), then
 * Probation (work admitted again), then back to Healthy after
 * `probation_successes` completed hops — or straight back to Unhealthy
 * on the first loss during probation.
 *
 * With no fault sink attached nothing here runs, so a fault-free
 * timeline is bit-identical to one built without this subsystem.
 */
struct ResilienceConfig {
  bool enabled = true;            ///< Master switch (watchdogs + health).
  double hop_timeout_us = 50.0;   ///< Watchdog per accelerator hop.
  int hop_retries = 3;            ///< Re-issues before CPU fallback.
  double backoff_base_us = 5.0;   ///< First retry delay.
  double backoff_factor = 2.0;    ///< Delay multiplier per retry.
  int unhealthy_threshold = 3;    ///< Consecutive losses to quarantine.
  double quarantine_us = 200.0;   ///< Re-route window before probation.
  int probation_successes = 8;    ///< Clean hops to regain full health.
};

/** Engine configuration. Glue-instruction counts follow Section VII-B.2. */
struct EngineConfig {
  bool dispatcher_branches = true;    ///< Off = Fig. 13 "Direct".
  bool dispatcher_transforms = true;  ///< Off = Fig. 13 "CntrFlow".
  bool zero_overhead = false;         ///< Fig. 14 "Ideal".

  /**
   * Compiled chain-program backend (DESIGN.md §15): dispatcher hops
   * execute pre-flattened ChainProgram blocks and completions drain
   * through per-accelerator batched rings. Bit-identical to the
   * interpreter, which stays available as the differential oracle (a hop
   * the compiler could not flatten falls back per hop). Also enabled by
   * the AF_COMPILE=1 environment toggle.
   */
  bool compile = false;

  int enqueue_retries = 3;
  double enqueue_retry_delay_ns = 300.0;
  double response_timeout_ms = 10.0;
  /** Max concurrently-executing traces per tenant (Section IV-D). */
  std::uint32_t tenant_max_active = 1u << 30;

  double base_instrs = 15.0;       ///< FSM work with no branch/end/XF.
  double branch_instrs = 7.0;      ///< Extra for resolving a branch.
  double eot_atm_instrs = 12.0;    ///< End of trace with an ATM address.
  double eot_notify_instrs = 20.0; ///< End of trace with DMA + notify.
  double transform_instrs = 12.0;  ///< DTE control for a 2KB payload.
  double dte_gbps = 50.0;          ///< Data Transform Engine throughput.
  /** Manager events per ablation fallback (interrupt, fetch state,
   *  decide, write back): multiplies manager_event_us. */
  double manager_fallback_events = 4.0;

  /** Enable deadline stamping for SLO scheduling (with SchedPolicy::kEdf). */
  bool stamp_deadlines = false;

  /** Per-tenant MBA-style bandwidth limits on the A-DMA path (IV-D). */
  MbaConfig mba;

  /** Fault-recovery policy; active only with a fault sink attached. */
  ResilienceConfig resilience;

  /**
   * Multi-tenant QoS policy (DESIGN.md §19): per-tenant active-chain
   * quotas and scheduling priorities honored at chain start. The default
   * (no tenants) is a behavioral no-op.
   */
  qos::QosPolicy qos;
};

/** Engine-level counters (Sections VII-B.2, VII-B.6). */
struct EngineStats {
  std::uint64_t chains_started = 0;
  std::uint64_t chains_completed = 0;
  std::uint64_t enqueue_fallbacks = 0;   ///< Enqueue retries exhausted.
  std::uint64_t overflow_fallbacks = 0;  ///< Overflow area full.
  /** Fallbacks by the accelerator type that rejected the work (Fig. 19). */
  std::array<std::uint64_t, accel::kNumAccelTypes> fallbacks_by_type{};
  /** Invocation attempts per type (denominator for fallback shares). */
  std::array<std::uint64_t, accel::kNumAccelTypes> attempts_by_type{};
  std::uint64_t timeouts = 0;            ///< TCP wait-slot timeouts.
  std::uint64_t deferred_arms = 0;       ///< Wait-arming deferred: queue full.
  std::uint64_t manager_fallbacks = 0;   ///< Ablations only.
  std::uint64_t atm_loads = 0;
  std::uint64_t notifications = 0;
  std::uint64_t tenant_throttled = 0;
  /** Subset of tenant_throttled: the QosPolicy per-tenant quota (not the
   *  global tenant_max_active knob) was the binding cap (DESIGN.md §19). */
  std::uint64_t quota_throttled = 0;
  // Per-tenant accounting (grow-on-demand, indexed by tenant id): the
  // end-to-end evidence that a chain's tenant tag survives re-routing —
  // CPU fallback, quarantine, cross-shard RPCs (DESIGN.md §19 tests).
  std::vector<std::uint64_t> completed_by_tenant;
  std::vector<std::uint64_t> faulted_by_tenant;
  std::vector<std::uint64_t> fallback_by_tenant;
  // Fault-recovery accounting (DESIGN.md §14; zero on fault-free runs).
  std::uint64_t hop_timeouts = 0;       ///< Hops declared lost by watchdogs.
  std::uint64_t hop_retries = 0;        ///< Lost hops re-issued.
  std::uint64_t hop_probes = 0;         ///< Watchdog fired, chain alive.
  std::uint64_t retry_exhausted_fallbacks = 0;  ///< Retries spent -> CPU.
  std::uint64_t health_fallbacks = 0;   ///< Re-routed: target quarantined.
  std::uint64_t unhealthy_transitions = 0;  ///< Healthy -> Unhealthy edges.
  std::uint64_t probation_recoveries = 0;   ///< Probation -> Healthy edges.
  std::uint64_t chains_faulted = 0;     ///< Completed but needed recovery.
  // Glue-instruction accounting per output-dispatcher operation.
  stats::Summary glue_instrs;
  std::uint64_t glue_branch_ops = 0;
  std::uint64_t glue_transform_ops = 0;
  std::uint64_t glue_eot_ops = 0;
};

/**
 * The AccelFlow orchestration engine. One instance drives one Machine.
 *
 * Implements accel::OutputHandler: every accelerator's output dispatcher
 * delegates its Figure-8 semantics here.
 */
class AccelFlowEngine : public accel::OutputHandler {
 public:
  AccelFlowEngine(Machine& machine, const TraceLibrary& lib,
                  const EngineConfig& config);
  ~AccelFlowEngine() override;

  /**
   * run_trace(): begins executing the chain starting at `first` on behalf
   * of ctx->core. Handles tenant throttling, the user-mode Enqueue with
   * retries, and the initial payload DMA. ctx->on_done fires when control
   * returns to the CPU.
   */
  void start_chain(ChainContext* ctx, AtmAddr first);

  void handle_output(accel::Accelerator& acc, accel::SlotId slot) override;

  const EngineStats& stats() const { return stats_; }
  const EngineConfig& config() const { return config_; }

  /** Active traces for `tenant` (Section IV-D counter). */
  std::uint32_t tenant_active(accel::TenantId tenant) const;

  /** The MBA-style per-tenant bandwidth limiter. */
  TenantBandwidthLimiter& bandwidth_limiter() { return mba_; }

  /**
   * Exports the orchestration-level counters under "engine.*" dotted names
   * (chains, fallbacks, timeouts, glue-instruction totals); pairs with
   * Machine::snapshot_metrics() for the hardware side.
   */
  void snapshot_metrics(obs::MetricsRegistry& reg) const;

  /**
   * Per-accelerator health for graceful degradation (ResilienceConfig).
   * Deterministic state: it is part of the engine Checkpoint.
   */
  struct Health {
    enum class State : std::uint8_t { kHealthy = 0, kUnhealthy, kProbation };
    State state = State::kHealthy;
    int consecutive_losses = 0;  ///< Lost hops since the last clean one.
    int probation_successes = 0; ///< Clean hops since entering probation.
    sim::TimePs quarantine_until = 0;
  };

  /** Health of `t` (tests / benches inspect quarantine behaviour). */
  const Health& health(accel::AccelType t) const {
    return health_[accel::index_of(t)];
  }

 private:
  /** The machine's tracer, or nullptr when tracing is off. Fetched per
   *  call so attaching after engine construction works. */
  obs::Tracer* trc() const { return machine_.tracer(); }
  /** The machine's validation checker, or nullptr when checking is off.
   *  Fetched per call for the same late-attach reason as trc(). */
  ValidationHooks* chk() const { return machine_.checker(); }
  /** Enqueue with retry; falls back to the CPU when the queue stays full. */
  void enqueue_with_retry(ChainContext* ctx, accel::QueueEntry entry,
                          accel::AccelType target, int attempt);

  /**
   * Continues interpretation of `e`'s trace at the output dispatcher of
   * `acc` (Figure 8). `e` is a copy of the output-queue entry; `slot` is
   * released once the entry has moved on.
   */
  void run_dispatcher_fsm(accel::Accelerator& acc, accel::SlotId slot);

  /**
   * Executes the compiled block for `e`'s (word, mark, flags), replaying
   * its micro-ops in interpreter order. Returns false — before any side
   * effect — when the hop must be interpreted instead: no compiled entry,
   * a kInterpret block, or a Fig. 13 ablation config whose manager round
   * trips the compiler cannot pre-resolve.
   */
  bool execute_compiled(accel::Accelerator& acc, accel::SlotId slot,
                        accel::QueueEntry& e);

  /** Forwards `e` into `target`'s input queue via an A-DMA engine. */
  void forward(accel::Accelerator& from, accel::QueueEntry e,
               accel::AccelType target, sim::TimePs ready, bool armed_wait,
               RemoteKind wait_kind);

  /** End of trace, no address: DMA to memory + user-level notification. */
  void finish_to_cpu(accel::Accelerator& from, accel::QueueEntry e,
                     sim::TimePs ready);

  /** Round trip to the centralized manager (ablation fallback path). */
  sim::TimePs manager_round_trip(const accel::Accelerator& at,
                                 sim::TimePs ready);

  /**
   * Graceful CPU fallback: the denied operation runs (unaccelerated) on
   * the initiating core, control ops up to the next accelerator invoke are
   * interpreted by the core, and the chain then re-enters the ensemble.
   * The trace only stays on the CPU while accelerators keep rejecting it.
   */
  void continue_chain_on_cpu(ChainContext* ctx, std::uint64_t word,
                             std::uint8_t pm, std::uint64_t payload_bytes,
                             accel::AccelType pending);

  /** Enqueues a data-ready entry, using the overflow area when full. */
  void forward_into_queue(accel::Accelerator& dst, accel::QueueEntry e);

  /** Fallback for a rejected forward: includes the pending op itself. */
  void cpu_fallback_from_entry(const accel::QueueEntry& e,
                               accel::AccelType pending);

  /** Chain ended: bookkeeping + tenant counter + queued chain starts. */
  void complete_chain(ChainContext* ctx, const ChainResult& result);

  // --- Fault resilience (DESIGN.md §14) ---------------------------------

  /**
   * One chain's hop watchdog: enough saved state to re-issue the pending
   * operation if the accelerator loses it. `timer` is the armed watchdog
   * event — or, between a loss and its re-issue, the backoff event.
   */
  struct HopState {
    sim::EventId timer = sim::kInvalidEventId;
    accel::AccelType target;        ///< Accelerator owing the output.
    std::uint64_t word = 0;         ///< Trace word at hand-off.
    std::uint8_t pm = 0;            ///< Position mark at hand-off.
    std::uint64_t bytes = 0;        ///< Payload size at hand-off.
    accel::DataFormat fmt = accel::DataFormat::kProtoWire;  ///< Payload format.
    int retries = 0;                ///< Re-issues of this hop so far.
    sim::TimePs timeout = 0;        ///< Current watchdog delay.
    /** Known future delivery (DMA arrival, remote response): the chain
     *  cannot be lost before this time; kTimeNever for unbounded nested
     *  waits, 0 once the entry is queued (holds_chain() covers it). */
    sim::TimePs in_flight_until = 0;
  };

  /** Watchdogs (and the health machine) run only in fault-injected runs. */
  bool resilience_active() const {
    return config_.resilience.enabled && machine_.fault_hooks() != nullptr;
  }
  /** (Re-)arms ctx's watchdog for a hand-off to `target`. A re-arm for
   *  the same hop (equal target/word/pm) keeps its retry count. */
  void arm_hop(ChainContext* ctx, accel::AccelType target,
               std::uint64_t word, std::uint8_t pm, std::uint64_t bytes,
               accel::DataFormat fmt, sim::TimePs in_flight_until);
  /** Cancels and forgets ctx's watchdog (hop progressed or chain done). */
  void disarm_hop(ChainContext* ctx);
  /** Records a known future delivery time on ctx's armed watchdog. */
  void note_hop_wait(ChainContext* ctx, sim::TimePs until);
  /** Watchdog fired: probe liveness, then retry / fall back / re-arm. */
  void on_hop_timeout(ChainContext* ctx);
  /** Backoff elapsed: rebuild the lost entry and re-issue it. */
  void retry_hop(ChainContext* ctx);
  /** A hop on `t` produced output: feeds the health state machine. */
  void record_hop_success(accel::AccelType t);
  /** A hop on `t` was lost: feeds the health state machine. */
  void record_hop_failure(accel::AccelType t);
  /** True while `t` is quarantined (lazily advances Unhealthy->Probation). */
  bool reroute_unhealthy(accel::AccelType t);

  sim::TimePs instr_time(double instrs) const;

  /** Grow-on-demand slot of the flat per-tenant active-trace counter. */
  std::uint32_t& tenant_slot(accel::TenantId tenant) {
    if (tenant >= tenant_active_.size()) {
      tenant_active_.resize(static_cast<std::size_t>(tenant) + 1, 0);
    }
    return tenant_active_[tenant];
  }

  Machine& machine_;
  const TraceLibrary& lib_;
  EngineConfig config_;
  EngineStats stats_;
  /** Compiled chain programs; non-null iff the compiled backend is on
   *  (EngineConfig::compile or AF_COMPILE). Immutable once built — derived
   *  from the trace library, so it is not part of the Checkpoint. */
  std::unique_ptr<ChainProgram> program_;
  /** Per-tenant active-trace counts, indexed by tenant id. Tenant ids are
   *  small and dense (request-engine services), so a flat array replaces
   *  the old hash map: the Section IV-D throttle check on every chain
   *  start/finish becomes one indexed load. */
  std::vector<std::uint32_t> tenant_active_;
  struct PendingStart {
    ChainContext* ctx;
    AtmAddr first;
  };
  std::deque<PendingStart> throttled_;
  TenantBandwidthLimiter mba_;
  /** Entries in flight between kernel callbacks (DMA arrivals, enqueue
   *  retries, deferred wait-arms): callbacks capture the 4-byte ticket,
   *  not the ~100-byte entry (see sim/callback.h's capture budget). */
  sim::TicketPool<accel::QueueEntry> parked_;
  /** Armed hop watchdogs by chain; empty on fault-free runs and at every
   *  quiescent point (all chains completed -> all disarmed). */
  std::unordered_map<ChainContext*, HopState> hops_;
  /** Per-accelerator health (indexed by accel::index_of). */
  std::array<Health, accel::kNumAccelTypes> health_{};

 public:
  /**
   * Deep copy of the engine's orchestration state (DESIGN.md §13).
   * `throttled` holds raw ChainContext pointers, so a checkpoint is only
   * meaningful at a quiescent point (no chain in flight), where the deque
   * is empty — workload::SweepSession guarantees that.
   */
  struct Checkpoint {
    EngineStats stats;                        ///< Counters.
    std::vector<std::uint32_t> tenant_active; ///< Per-tenant live traces.
    std::deque<PendingStart> throttled;       ///< Waiting starts (empty).
    TenantBandwidthLimiter::Checkpoint mba;   ///< Token buckets.
    sim::TicketPool<accel::QueueEntry>::Checkpoint parked;  ///< In-flight.
    std::array<Health, accel::kNumAccelTypes> health{};     ///< §14 state.
  };

  /** Captures the engine's orchestration state. */
  Checkpoint checkpoint() const {
    return Checkpoint{stats_, tenant_active_, throttled_, mba_.checkpoint(),
                      parked_.checkpoint(), health_};
  }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    stats_ = c.stats;
    tenant_active_ = c.tenant_active;
    throttled_ = c.throttled;
    mba_.restore(c.mba);
    parked_.restore(c.parked);
    health_ = c.health;
    // Watchdog timers reference the pre-restore calendar; a checkpoint is
    // only taken at quiescence, where every chain has disarmed anyway.
    hops_.clear();
  }
};

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_ENGINE_H_
