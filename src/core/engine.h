#ifndef ACCELFLOW_CORE_ENGINE_H_
#define ACCELFLOW_CORE_ENGINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "accel/accelerator.h"
#include "core/chain.h"
#include "core/machine.h"
#include "core/trace_analysis.h"
#include "core/tenant_mba.h"
#include "core/trace_library.h"
#include "core/validation_hooks.h"
#include "sim/pool.h"
#include "stats/summary.h"

/**
 * @file
 * The AccelFlow execution engine: the output-dispatcher FSM of Figure 8,
 * the user-mode Enqueue path with retry/fallback (starvation freedom), the
 * overflow path (deadlock freedom), ATM continuation loading, network-wait
 * arming with timeouts, per-tenant trace throttling (Section IV-D), and
 * soft-SLO deadline propagation (Section IV-C).
 *
 * Ablation flags reproduce the Figure 13 ladder: with dispatcher_branches
 * off, branch resolution round-trips to the centralized hardware manager
 * ("Direct"); with dispatcher_transforms off, data transformations and
 * large-payload handling do too ("CntrFlow"). zero_overhead gives the
 * "Ideal" system of Figure 14.
 */

namespace accelflow::core {

/** Engine configuration. Glue-instruction counts follow Section VII-B.2. */
struct EngineConfig {
  bool dispatcher_branches = true;    ///< Off = Fig. 13 "Direct".
  bool dispatcher_transforms = true;  ///< Off = Fig. 13 "CntrFlow".
  bool zero_overhead = false;         ///< Fig. 14 "Ideal".

  int enqueue_retries = 3;
  double enqueue_retry_delay_ns = 300.0;
  double response_timeout_ms = 10.0;
  /** Max concurrently-executing traces per tenant (Section IV-D). */
  std::uint32_t tenant_max_active = 1u << 30;

  double base_instrs = 15.0;       ///< FSM work with no branch/end/XF.
  double branch_instrs = 7.0;      ///< Extra for resolving a branch.
  double eot_atm_instrs = 12.0;    ///< End of trace with an ATM address.
  double eot_notify_instrs = 20.0; ///< End of trace with DMA + notify.
  double transform_instrs = 12.0;  ///< DTE control for a 2KB payload.
  double dte_gbps = 50.0;          ///< Data Transform Engine throughput.
  /** Manager events per ablation fallback (interrupt, fetch state,
   *  decide, write back): multiplies manager_event_us. */
  double manager_fallback_events = 4.0;

  /** Enable deadline stamping for SLO scheduling (with SchedPolicy::kEdf). */
  bool stamp_deadlines = false;

  /** Per-tenant MBA-style bandwidth limits on the A-DMA path (IV-D). */
  MbaConfig mba;
};

/** Engine-level counters (Sections VII-B.2, VII-B.6). */
struct EngineStats {
  std::uint64_t chains_started = 0;
  std::uint64_t chains_completed = 0;
  std::uint64_t enqueue_fallbacks = 0;   ///< Enqueue retries exhausted.
  std::uint64_t overflow_fallbacks = 0;  ///< Overflow area full.
  /** Fallbacks by the accelerator type that rejected the work (Fig. 19). */
  std::array<std::uint64_t, accel::kNumAccelTypes> fallbacks_by_type{};
  /** Invocation attempts per type (denominator for fallback shares). */
  std::array<std::uint64_t, accel::kNumAccelTypes> attempts_by_type{};
  std::uint64_t timeouts = 0;            ///< TCP wait-slot timeouts.
  std::uint64_t deferred_arms = 0;       ///< Wait-arming deferred: queue full.
  std::uint64_t manager_fallbacks = 0;   ///< Ablations only.
  std::uint64_t atm_loads = 0;
  std::uint64_t notifications = 0;
  std::uint64_t tenant_throttled = 0;
  // Glue-instruction accounting per output-dispatcher operation.
  stats::Summary glue_instrs;
  std::uint64_t glue_branch_ops = 0;
  std::uint64_t glue_transform_ops = 0;
  std::uint64_t glue_eot_ops = 0;
};

/**
 * The AccelFlow orchestration engine. One instance drives one Machine.
 *
 * Implements accel::OutputHandler: every accelerator's output dispatcher
 * delegates its Figure-8 semantics here.
 */
class AccelFlowEngine : public accel::OutputHandler {
 public:
  AccelFlowEngine(Machine& machine, const TraceLibrary& lib,
                  const EngineConfig& config);
  ~AccelFlowEngine() override;

  /**
   * run_trace(): begins executing the chain starting at `first` on behalf
   * of ctx->core. Handles tenant throttling, the user-mode Enqueue with
   * retries, and the initial payload DMA. ctx->on_done fires when control
   * returns to the CPU.
   */
  void start_chain(ChainContext* ctx, AtmAddr first);

  void handle_output(accel::Accelerator& acc, accel::SlotId slot) override;

  const EngineStats& stats() const { return stats_; }
  const EngineConfig& config() const { return config_; }

  /** Active traces for `tenant` (Section IV-D counter). */
  std::uint32_t tenant_active(accel::TenantId tenant) const;

  /** The MBA-style per-tenant bandwidth limiter. */
  TenantBandwidthLimiter& bandwidth_limiter() { return mba_; }

  /**
   * Exports the orchestration-level counters under "engine.*" dotted names
   * (chains, fallbacks, timeouts, glue-instruction totals); pairs with
   * Machine::snapshot_metrics() for the hardware side.
   */
  void snapshot_metrics(obs::MetricsRegistry& reg) const;

 private:
  /** The machine's tracer, or nullptr when tracing is off. Fetched per
   *  call so attaching after engine construction works. */
  obs::Tracer* trc() const { return machine_.tracer(); }
  /** The machine's validation checker, or nullptr when checking is off.
   *  Fetched per call for the same late-attach reason as trc(). */
  ValidationHooks* chk() const { return machine_.checker(); }
  /** Enqueue with retry; falls back to the CPU when the queue stays full. */
  void enqueue_with_retry(ChainContext* ctx, accel::QueueEntry entry,
                          accel::AccelType target, int attempt);

  /**
   * Continues interpretation of `e`'s trace at the output dispatcher of
   * `acc` (Figure 8). `e` is a copy of the output-queue entry; `slot` is
   * released once the entry has moved on.
   */
  void run_dispatcher_fsm(accel::Accelerator& acc, accel::SlotId slot);

  /** Forwards `e` into `target`'s input queue via an A-DMA engine. */
  void forward(accel::Accelerator& from, accel::QueueEntry e,
               accel::AccelType target, sim::TimePs ready, bool armed_wait,
               RemoteKind wait_kind);

  /** End of trace, no address: DMA to memory + user-level notification. */
  void finish_to_cpu(accel::Accelerator& from, accel::QueueEntry e,
                     sim::TimePs ready);

  /** Round trip to the centralized manager (ablation fallback path). */
  sim::TimePs manager_round_trip(const accel::Accelerator& at,
                                 sim::TimePs ready);

  /**
   * Graceful CPU fallback: the denied operation runs (unaccelerated) on
   * the initiating core, control ops up to the next accelerator invoke are
   * interpreted by the core, and the chain then re-enters the ensemble.
   * The trace only stays on the CPU while accelerators keep rejecting it.
   */
  void continue_chain_on_cpu(ChainContext* ctx, std::uint64_t word,
                             std::uint8_t pm, std::uint64_t payload_bytes,
                             accel::AccelType pending);

  /** Enqueues a data-ready entry, using the overflow area when full. */
  void forward_into_queue(accel::Accelerator& dst, accel::QueueEntry e);

  /** Fallback for a rejected forward: includes the pending op itself. */
  void cpu_fallback_from_entry(const accel::QueueEntry& e,
                               accel::AccelType pending);

  /** Chain ended: bookkeeping + tenant counter + queued chain starts. */
  void complete_chain(ChainContext* ctx, const ChainResult& result);

  sim::TimePs instr_time(double instrs) const;

  /** Grow-on-demand slot of the flat per-tenant active-trace counter. */
  std::uint32_t& tenant_slot(accel::TenantId tenant) {
    if (tenant >= tenant_active_.size()) {
      tenant_active_.resize(static_cast<std::size_t>(tenant) + 1, 0);
    }
    return tenant_active_[tenant];
  }

  Machine& machine_;
  const TraceLibrary& lib_;
  EngineConfig config_;
  EngineStats stats_;
  /** Per-tenant active-trace counts, indexed by tenant id. Tenant ids are
   *  small and dense (request-engine services), so a flat array replaces
   *  the old hash map: the Section IV-D throttle check on every chain
   *  start/finish becomes one indexed load. */
  std::vector<std::uint32_t> tenant_active_;
  struct PendingStart {
    ChainContext* ctx;
    AtmAddr first;
  };
  std::deque<PendingStart> throttled_;
  TenantBandwidthLimiter mba_;
  /** Entries in flight between kernel callbacks (DMA arrivals, enqueue
   *  retries, deferred wait-arms): callbacks capture the 4-byte ticket,
   *  not the ~100-byte entry (see sim/callback.h's capture budget). */
  sim::TicketPool<accel::QueueEntry> parked_;

 public:
  /**
   * Deep copy of the engine's orchestration state (DESIGN.md §13).
   * `throttled` holds raw ChainContext pointers, so a checkpoint is only
   * meaningful at a quiescent point (no chain in flight), where the deque
   * is empty — workload::SweepSession guarantees that.
   */
  struct Checkpoint {
    EngineStats stats;                        ///< Counters.
    std::vector<std::uint32_t> tenant_active; ///< Per-tenant live traces.
    std::deque<PendingStart> throttled;       ///< Waiting starts (empty).
    TenantBandwidthLimiter::Checkpoint mba;   ///< Token buckets.
    sim::TicketPool<accel::QueueEntry>::Checkpoint parked;  ///< In-flight.
  };

  /** Captures the engine's orchestration state. */
  Checkpoint checkpoint() const {
    return Checkpoint{stats_, tenant_active_, throttled_, mba_.checkpoint(),
                      parked_.checkpoint()};
  }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    stats_ = c.stats;
    tenant_active_ = c.tenant_active;
    throttled_ = c.throttled;
    mba_.restore(c.mba);
    parked_.restore(c.parked);
  }
};

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_ENGINE_H_
