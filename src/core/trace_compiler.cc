#include "core/trace_compiler.h"

#include <cctype>
#include <map>
#include <optional>

#include "core/trace_builder.h"

namespace accelflow::core {

namespace {

/** Token kinds of the annotation language. */
enum class Tok : std::uint8_t {
  kIdent,     // Accelerator, condition, format, or trace name.
  kGt,        // >
  kQuestion,  // ?
  kColon,     // :
  kLBracket,  // [
  kRBracket,  // ]
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kBang,      // !
  kAt,        // @
  kSlash,     // /
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::size_t pos = 0;
};

/** The token's text as shown in TraceCompileError::token(). */
std::string token_text(const Token& t) {
  return t.kind == Tok::kEnd ? "<end of input>" : t.text;
}

/** Hand-rolled scanner: the language is tiny. */
class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (i_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[i_]))) {
      ++i_;
    }
    current_.pos = i_;
    if (i_ >= src_.size()) {
      current_ = {Tok::kEnd, "", i_};
      return;
    }
    const char c = src_[i_];
    auto single = [&](Tok k) {
      current_ = {k, std::string(1, c), i_};
      ++i_;
    };
    switch (c) {
      case '>':
        return single(Tok::kGt);
      case '?':
        return single(Tok::kQuestion);
      case ':':
        return single(Tok::kColon);
      case '[':
        return single(Tok::kLBracket);
      case ']':
        return single(Tok::kRBracket);
      case '(':
        return single(Tok::kLParen);
      case ')':
        return single(Tok::kRParen);
      case ',':
        return single(Tok::kComma);
      case '!':
        return single(Tok::kBang);
      case '@':
        return single(Tok::kAt);
      case '/':
        return single(Tok::kSlash);
      default:
        break;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i_;
      while (i_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[i_])) ||
              src_[i_] == '_' || src_[i_] == '#')) {
        ++i_;
      }
      current_ = {Tok::kIdent, std::string(src_.substr(start, i_ - start)),
                  start};
      return;
    }
    throw TraceCompileError("unexpected character", i_, std::string(1, c));
  }

  std::string_view src_;
  std::size_t i_ = 0;
  Token current_;
};

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

std::optional<accel::AccelType> parse_accel(const std::string& ident) {
  static const std::map<std::string, accel::AccelType> kMap = {
      {"tcp", accel::AccelType::kTcp},   {"encr", accel::AccelType::kEncr},
      {"decr", accel::AccelType::kDecr}, {"rpc", accel::AccelType::kRpc},
      {"ser", accel::AccelType::kSer},   {"dser", accel::AccelType::kDser},
      {"cmp", accel::AccelType::kCmp},   {"dcmp", accel::AccelType::kDcmp},
      {"ldb", accel::AccelType::kLdb}};
  const auto it = kMap.find(lower(ident));
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

std::optional<BranchCond> parse_cond(const std::string& ident) {
  static const std::map<std::string, BranchCond> kMap = {
      {"compressed", BranchCond::kCompressed},
      {"hit", BranchCond::kHit},
      {"found", BranchCond::kFound},
      {"ok", BranchCond::kNoException},
      {"ccompressed", BranchCond::kCCompressed}};
  const auto it = kMap.find(lower(ident));
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

accel::DataFormat parse_format(const Token& t) {
  static const std::map<std::string, accel::DataFormat> kMap = {
      {"str", accel::DataFormat::kString},
      {"string", accel::DataFormat::kString},
      {"json", accel::DataFormat::kJson},
      {"bson", accel::DataFormat::kBson},
      {"proto", accel::DataFormat::kProtoWire}};
  const auto it = kMap.find(lower(t.text));
  if (it == kMap.end()) {
    throw TraceCompileError("unknown data format", t.pos, token_text(t));
  }
  return it->second;
}

RemoteKind parse_remote(const Token& t) {
  static const std::map<std::string, RemoteKind> kMap = {
      {"cache_read", RemoteKind::kDbCacheRead},
      {"db_read", RemoteKind::kDbRead},
      {"db_write", RemoteKind::kDbWrite},
      {"rpc", RemoteKind::kNestedRpc},
      {"http", RemoteKind::kHttp}};
  const auto it = kMap.find(lower(t.text));
  if (it == kMap.end()) {
    throw TraceCompileError("unknown remote kind", t.pos, token_text(t));
  }
  return it->second;
}

/** Recursive-descent parser emitting into a TraceBuilder. */
class Parser {
 public:
  Parser(Lexer& lex, TraceLibrary& lib) : lex_(lex), lib_(lib) {}

  /** Parses a full program; returns the ATM address. */
  AtmAddr program(const std::string& name) {
    TraceBuilder b(lib_);
    fragment(b, /*in_branch_body=*/false);
    // Terminator.
    const Token t = lex_.take();
    if (t.kind == Tok::kBang) {
      expect_end();
      return b.end_notify(name);
    }
    if (t.kind == Tok::kAt) {
      const Token target = expect(Tok::kIdent, "trace name after '@'");
      RemoteKind remote = RemoteKind::kNone;
      if (lex_.peek().kind == Tok::kSlash) {
        lex_.take();
        remote = parse_remote(expect(Tok::kIdent, "remote kind after '/'"));
      }
      expect_end();
      return b.tail(name, target.text, remote);
    }
    throw TraceCompileError("expected terminator '!' or '@trace'", t.pos,
                            token_text(t));
  }

 private:
  /** Parses steps separated by '>' until a terminator or ']'. */
  void fragment(TraceBuilder& b, bool in_branch_body) {
    for (;;) {
      step(b);
      const Tok next = lex_.peek().kind;
      if (next == Tok::kGt) {
        lex_.take();
        continue;
      }
      if (in_branch_body) {
        if (next == Tok::kRBracket) return;
        throw TraceCompileError("expected '>' or ']' in branch body",
                                lex_.peek().pos, token_text(lex_.peek()));
      }
      return;  // Caller parses the terminator.
    }
  }

  void step(TraceBuilder& b) {
    const Token t = lex_.take();
    if (t.kind != Tok::kIdent) {
      throw TraceCompileError("expected a step", t.pos, token_text(t));
    }
    const std::string word = lower(t.text);

    if (word == "xf") {
      expect(Tok::kLParen, "'(' after XF");
      const accel::DataFormat from =
          parse_format(expect(Tok::kIdent, "source format"));
      expect(Tok::kComma, "',' between formats");
      const accel::DataFormat to =
          parse_format(expect(Tok::kIdent, "destination format"));
      expect(Tok::kRParen, "')' after formats");
      b.trans(from, to);
      return;
    }
    if (word == "notify") {
      b.notify_cont();
      return;
    }
    if (const auto cond = parse_cond(t.text)) {
      expect(Tok::kQuestion, "'?' after condition");
      const Token next = lex_.take();
      if (next.kind == Tok::kLBracket) {
        // Inline if-taken region. The body cannot be parsed inside
        // TraceBuilder::branch's callback (the parser is stateful), so
        // parse into a sub-builder-compatible lambda by deferring: collect
        // the body through a nested Parser invocation on this lexer.
        b.branch(*cond, [this](TraceBuilder& body) {
          fragment(body, /*in_branch_body=*/true);
        });
        expect(Tok::kRBracket, "']' closing branch body");
        return;
      }
      if (next.kind == Tok::kColon) {
        const Token target = expect(Tok::kIdent, "trace name after ':'");
        b.branch_else_goto(*cond, target.text);
        return;
      }
      throw TraceCompileError("expected '[' or ':' after '?'", next.pos,
                              token_text(next));
    }
    if (const auto accel_type = parse_accel(t.text)) {
      b.seq(*accel_type);
      return;
    }
    throw TraceCompileError("unknown step", t.pos, token_text(t));
  }

  Token expect(Tok kind, const char* what) {
    const Token t = lex_.take();
    if (t.kind != kind) {
      throw TraceCompileError(std::string("expected ") + what, t.pos,
                              token_text(t));
    }
    return t;
  }

  void expect_end() {
    if (lex_.peek().kind != Tok::kEnd) {
      throw TraceCompileError("trailing input after terminator",
                              lex_.peek().pos, token_text(lex_.peek()));
    }
  }

  Lexer& lex_;
  TraceLibrary& lib_;
};

}  // namespace

AtmAddr compile_trace(TraceLibrary& lib, const std::string& name,
                      std::string_view program) {
  Lexer lex(program);
  Parser parser(lex, lib);
  return parser.program(name);
}

}  // namespace accelflow::core
