#ifndef ACCELFLOW_CORE_TRACE_COMPILER_H_
#define ACCELFLOW_CORE_TRACE_COMPILER_H_

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/trace_library.h"

/**
 * @file
 * The trace compiler: the paper's Section IX future-work direction of
 * "automating trace generation via compiler and runtime infrastructures",
 * realized as a small annotation language that compiles to trace words
 * through the TraceBuilder (so auto-splitting, validation and ATM
 * registration all apply).
 *
 * Grammar (whitespace-insensitive):
 *
 *   program    := step (">" step)* terminator
 *   step       := accel | branch | transform | "NOTIFY"
 *   accel      := "TCP" | "Encr" | "Decr" | "RPC" | "Ser" | "Dser"
 *               | "Cmp" | "Dcmp" | "LdB"
 *   branch     := cond "?" "[" program-fragment "]"          // if-taken
 *               | cond "?" ":" ident                          // else-goto
 *   cond       := "compressed" | "hit" | "found" | "ok" | "ccompressed"
 *   transform  := "XF(" fmt "," fmt ")"
 *   fmt        := "str" | "json" | "bson" | "proto"
 *   terminator := "!"                                         // END_NOTIFY
 *               | "@" ident [ "/" remote ]                    // TAIL
 *   remote     := "cache_read" | "db_read" | "db_write" | "rpc" | "http"
 *
 * Examples (the paper's Figure 4a and 2b):
 *
 *   TCP > Decr > RPC > Dser
 *       > compressed? [ XF(json,str) > Dcmp ] > LdB !
 *
 *   Ser > Encr > TCP @T5/cache_read
 */

namespace accelflow::core {

/** Error raised on malformed annotation programs. */
class TraceCompileError : public std::runtime_error {
 public:
  /** Creates an error for `message` at byte offset `position`. */
  TraceCompileError(const std::string& message, std::size_t position)
      : TraceCompileError(message, position, "") {}

  /**
   * Creates an error for `message` at byte offset `position`, naming the
   * offending token `token` ("<end of input>" when the parser ran off the
   * end). what() reads e.g.
   * "unknown step, got 'Oops' (at offset 6)".
   */
  TraceCompileError(const std::string& message, std::size_t position,
                    const std::string& token)
      : std::runtime_error(format(message, position, token)),
        position_(position),
        token_(token) {}

  /** Byte offset into the program where parsing failed. */
  std::size_t position() const { return position_; }

  /** The offending token's text; "<end of input>" at EOF, empty when the
   *  error is not attached to a token. */
  const std::string& token() const { return token_; }

 private:
  static std::string format(const std::string& message, std::size_t position,
                            const std::string& token) {
    std::string s = message;
    if (!token.empty()) s += ", got '" + token + "'";
    s += " (at offset " + std::to_string(position) + ")";
    return s;
  }

  std::size_t position_;
  std::string token_;
};

/**
 * Compiles an annotation program into `lib` under `name`.
 *
 * @return the ATM address of the (first) compiled trace.
 * @throws TraceCompileError on syntax errors; std::runtime_error if the
 *         resulting trace fails structural validation.
 */
AtmAddr compile_trace(TraceLibrary& lib, const std::string& name,
                      std::string_view program);

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_TRACE_COMPILER_H_
