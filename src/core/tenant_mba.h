#ifndef ACCELFLOW_CORE_TENANT_MBA_H_
#define ACCELFLOW_CORE_TENANT_MBA_H_

#include <cstdint>
#include <unordered_map>

#include "accel/types.h"
#include "sim/simulator.h"
#include "sim/time.h"

/**
 * @file
 * Per-tenant memory/interconnect bandwidth allocation, in the spirit of
 * Intel Memory Bandwidth Allocation (MBA). Section IV-D: the per-tenant
 * trace cap "can be combined with a technique that limits memory bandwidth
 * use by a tenant in the memory controller, such as Intel's MBA".
 *
 * Each throttled tenant gets a token bucket refilled at its configured
 * rate; A-DMA transfers on that tenant's behalf are delayed until the
 * bucket covers their bytes. Unthrottled tenants pass through for free.
 */

namespace accelflow::core {

/** Per-tenant bandwidth limits. */
struct MbaConfig {
  /** Limits in bytes/second; tenants not present are unthrottled. */
  std::unordered_map<accel::TenantId, double> limit_bytes_per_sec;
  /** Burst allowance as seconds of credit at the configured rate. */
  double burst_seconds = 0.0005;  // 500us of line-rate burst.
};

/** Per-tenant accounting. */
struct MbaTenantStats {
  std::uint64_t transfers = 0;     ///< Transfers accounted.
  std::uint64_t bytes = 0;         ///< Bytes accounted.
  sim::TimePs throttle_delay = 0;  ///< Total start-time delay imposed.
};

/** Token-bucket bandwidth allocator over the A-DMA / memory path. */
class TenantBandwidthLimiter {
 public:
  /** Creates a limiter enforcing `config`'s per-tenant rates. */
  TenantBandwidthLimiter(sim::Simulator& sim, MbaConfig config)
      : sim_(sim), config_(std::move(config)) {}

  /**
   * Accounts a transfer of `bytes` for `tenant` and returns the earliest
   * time the transfer may start (>= now). Unthrottled tenants start
   * immediately.
   */
  sim::TimePs acquire(accel::TenantId tenant, std::uint64_t bytes);

  /** True when `tenant` has a configured *positive* bandwidth limit.
   *  Entries with rate <= 0 are inert (acquire() passes them through), so
   *  they do not count as throttled. */
  bool throttles(accel::TenantId tenant) const {
    const auto it = config_.limit_bytes_per_sec.find(tenant);
    return it != config_.limit_bytes_per_sec.end() && it->second > 0;
  }

  /** Accounting for `tenant`; a zeroed sentinel for tenants that never
   *  acquired. Read-only by construction: a stats query must not create a
   *  bucket, or observing stats between checkpoint() and restore() would
   *  diverge the checkpointed tenant map across a fork. */
  const MbaTenantStats& stats(accel::TenantId tenant) const {
    static const MbaTenantStats kNone{};
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? kNone : it->second.stats;
  }

 private:
  struct Bucket {
    double tokens = 0;          ///< Bytes of credit.
    sim::TimePs refilled = 0;   ///< Last refill timestamp.
    bool initialized = false;
    MbaTenantStats stats;
  };

 public:
  /** Deep copy of every tenant's bucket (DESIGN.md §13). Only keyed
   *  lookups touch the map, so unordered iteration cannot leak into
   *  results. */
  struct Checkpoint {
    std::unordered_map<accel::TenantId, Bucket> tenants;  ///< Buckets.
  };

  /** Captures all token buckets. */
  Checkpoint checkpoint() const { return Checkpoint{tenants_}; }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) { tenants_ = c.tenants; }

 private:
  sim::Simulator& sim_;
  MbaConfig config_;
  std::unordered_map<accel::TenantId, Bucket> tenants_;
};

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_TENANT_MBA_H_
