#ifndef ACCELFLOW_CORE_TRACE_LIBRARY_H_
#define ACCELFLOW_CORE_TRACE_LIBRARY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/trace_encoding.h"

/**
 * @file
 * The software-side registry of traces a service has constructed
 * (Section V.4: programmers build traces through the API and invoke them by
 * name with run_trace). The library owns the name -> ATM-address mapping
 * and the metadata the simulator needs about TAIL edges that wait for a
 * network response.
 */

namespace accelflow::core {

/**
 * What a TAIL-armed receive trace waits for. The paper's traces wait on
 * database-cache reads/writes, database reads, nested RPCs, and HTTP
 * requests (Table II).
 */
enum class RemoteKind : std::uint8_t {
  kNone = 0,       ///< TAIL chains immediately (no network wait).
  kDbCacheRead,    ///< T4 -> T5.
  kDbRead,         ///< T5-miss -> T6.
  kDbWrite,        ///< T8 / T6 write-back -> T7.
  kNestedRpc,      ///< T9 -> T10.
  kHttp,           ///< T11 -> T12.
};

inline constexpr std::size_t kNumRemoteKinds = 6;

constexpr std::string_view name_of(RemoteKind k) {
  constexpr std::string_view kNames[kNumRemoteKinds] = {
      "none", "db-cache-read", "db-read", "db-write", "nested-rpc", "http"};
  return kNames[static_cast<std::size_t>(k)];
}

/** Registry of named traces and their ATM placement. */
class TraceLibrary {
 public:
  /** Reserves an address for `name` (forward references). */
  AtmAddr reserve(const std::string& name);

  /** Registers `t` under `name` (reusing a reserved address if present). */
  AtmAddr add(const std::string& name, const Trace& t);

  /** Marks arrivals at `target` as waiting for a `kind` network response. */
  void set_remote(AtmAddr target, RemoteKind kind);

  bool contains(const std::string& name) const;
  /** True if a trace has actually been stored at `addr` (not just reserved). */
  bool stored(AtmAddr addr) const;
  AtmAddr addr_of(const std::string& name) const;
  const Trace& get(AtmAddr addr) const;
  const Trace& get(const std::string& name) const {
    return get(addr_of(name));
  }
  const std::string& name_of_addr(AtmAddr addr) const;

  /** RemoteKind::kNone if the target trace starts immediately. */
  RemoteKind remote_of(AtmAddr target) const;

  std::size_t size() const { return traces_.size(); }

  /** All registered addresses in registration order. */
  const std::vector<AtmAddr>& addresses() const { return order_; }

 private:
  struct Slot {
    std::string name;
    Trace trace;
    bool stored = false;
    RemoteKind remote = RemoteKind::kNone;
  };
  std::map<std::string, AtmAddr> by_name_;
  std::map<AtmAddr, Slot> traces_;
  std::vector<AtmAddr> order_;
  AtmAddr next_addr_ = 1;  // Address 0 is reserved as "no trace".
};

}  // namespace accelflow::core

#endif  // ACCELFLOW_CORE_TRACE_LIBRARY_H_
