#ifndef ACCELFLOW_STATS_LATENCY_RECORDER_H_
#define ACCELFLOW_STATS_LATENCY_RECORDER_H_

#include "sim/time.h"
#include "stats/histogram.h"
#include "stats/summary.h"

/**
 * @file
 * Latency accounting used by every experiment: a histogram for quantiles
 * plus a Summary for exact moments.
 */

namespace accelflow::stats {

/** Records a latency distribution; quantiles via histogram (<=1.6% error). */
class LatencyRecorder {
 public:
  void record(sim::TimePs latency) {
    hist_.add(latency);
    summary_.add(static_cast<double>(latency));
  }

  std::uint64_t count() const { return hist_.count(); }
  sim::TimePs p50() const { return hist_.quantile(0.50); }
  sim::TimePs p90() const { return hist_.quantile(0.90); }
  sim::TimePs p99() const { return hist_.quantile(0.99); }
  sim::TimePs p999() const { return hist_.quantile(0.999); }
  sim::TimePs quantile(double q) const { return hist_.quantile(q); }
  sim::TimePs min() const { return hist_.min(); }
  sim::TimePs max() const { return hist_.max(); }
  double mean() const { return summary_.mean(); }
  double mean_us() const { return sim::to_microseconds(
      static_cast<sim::TimePs>(summary_.mean())); }
  double p99_us() const { return sim::to_microseconds(p99()); }

  /** Fraction of recorded latencies exceeding `slo`. */
  double violation_rate(sim::TimePs slo) const {
    return hist_.fraction_above(slo);
  }

  void reset() {
    hist_.reset();
    summary_.reset();
  }

  void merge(const LatencyRecorder& o) {
    hist_.merge(o.hist_);
    summary_.merge(o.summary_);
  }

  const Histogram& histogram() const { return hist_; }
  const Summary& summary() const { return summary_; }

 private:
  Histogram hist_;
  Summary summary_;
};

}  // namespace accelflow::stats

#endif  // ACCELFLOW_STATS_LATENCY_RECORDER_H_
