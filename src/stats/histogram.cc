#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace accelflow::stats {

std::size_t Histogram::bucket_index(std::uint64_t value) const {
  // Values < sub_buckets_ map 1:1 to the first linear range; above that,
  // each power-of-two range is split into sub_buckets_/2 extra buckets.
  if (value < sub_buckets_) return static_cast<std::size_t>(value);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned range = msb - sub_bucket_bits_ + 1;  // >= 1
  const std::uint64_t within = (value >> range) & ((sub_buckets_ >> 1) - 1);
  return sub_buckets_ + (range - 1) * (sub_buckets_ >> 1) +
         static_cast<std::size_t>(within);
}

std::uint64_t Histogram::bucket_low(std::size_t index) const {
  if (index < sub_buckets_) return index;
  const std::size_t half = sub_buckets_ >> 1;
  const std::size_t range = (index - sub_buckets_) / half + 1;
  const std::uint64_t within = (index - sub_buckets_) % half;
  return ((sub_buckets_ >> 1) + within) << range;
}

std::uint64_t Histogram::bucket_high(std::size_t index) const {
  if (index < sub_buckets_) return index;
  const std::size_t half = sub_buckets_ >> 1;
  const std::size_t range = (index - sub_buckets_) / half + 1;
  return bucket_low(index) + ((1ull << range) - 1);
}

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  const std::size_t idx = bucket_index(value);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += count;
  total_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

std::uint64_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based.
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      const std::uint64_t mid = bucket_low(i) + (bucket_high(i) - bucket_low(i)) / 2;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

double Histogram::fraction_above(std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (bucket_low(i) > threshold) above += counts_[i];
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
  sum_ = 0.0;
}

void Histogram::merge(const Histogram& o) {
  assert(sub_bucket_bits_ == o.sub_bucket_bits_);
  if (o.counts_.size() > counts_.size()) counts_.resize(o.counts_.size(), 0);
  for (std::size_t i = 0; i < o.counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  sum_ += o.sum_;
}

}  // namespace accelflow::stats
