#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace accelflow::stats {

Table& Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_us(double microseconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, microseconds);
  return buf;
}

std::string Table::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  // Compute column widths over header + rows.
  std::vector<std::size_t> width(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell;
      if (i + 1 < width.size()) {
        os << std::string(width[i] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i) {
      total += width[i] + (i + 1 < width.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace accelflow::stats
