#ifndef ACCELFLOW_STATS_SUMMARY_H_
#define ACCELFLOW_STATS_SUMMARY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

/**
 * @file
 * Streaming first/second-moment statistics (Welford's algorithm).
 */

namespace accelflow::stats {

/** Online mean / variance / min / max accumulator. O(1) memory. */
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /** Population variance. */
  double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /** Coefficient of variation (stddev / mean); 0 if mean is 0. */
  double cv() const { return mean_ != 0.0 ? stddev() / mean_ : 0.0; }

  void reset() { *this = Summary{}; }

  /** Merges another summary into this one (parallel Welford). */
  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / n;
    mean_ += delta * static_cast<double>(o.n_) / n;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace accelflow::stats

#endif  // ACCELFLOW_STATS_SUMMARY_H_
