#ifndef ACCELFLOW_STATS_COUNTERS_H_
#define ACCELFLOW_STATS_COUNTERS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

/**
 * @file
 * An ordered name -> value counter set with machine-readable JSON output.
 *
 * Benchmarks use this to persist their headline numbers (e.g.
 * bench_kernel_events writes BENCH_kernel.json) so the performance
 * trajectory across commits is diffable by tooling, not just eyeballable
 * in stdout tables.
 */

namespace accelflow::stats {

/** Insertion-ordered counters; values are doubles (integers print exact). */
class CounterSet {
 public:
  void set(std::string name, double value) {
    // Hash lookup instead of a linear scan: a registry snapshot re-sets
    // hundreds of dotted names per sweep point.
    if (const auto it = index_.find(std::string_view(name));
        it != index_.end()) {
      items_[it->second].second = value;
      return;
    }
    index_.emplace(name, items_.size());
    items_.emplace_back(std::move(name), value);
  }

  double get(const std::string& name, double fallback = 0) const {
    const auto it = index_.find(std::string_view(name));
    return it != index_.end() ? items_[it->second].second : fallback;
  }

  const std::vector<std::pair<std::string, double>>& items() const {
    return items_;
  }

  /** Writes `{"a": 1, "b": 2.5}` (flat object, one line per key). */
  void write_json(std::ostream& os) const {
    os << "{\n";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      os << "  \"" << items_[i].first << "\": ";
      write_number(os, items_[i].second);
      if (i + 1 < items_.size()) os << ",";
      os << "\n";
    }
    os << "}\n";
  }

 private:
  static void write_number(std::ostream& os, double v) {
    // Integers (counter values, rates rounded by the caller) print without
    // a fractional part so the JSON diffs cleanly.
    const auto as_int = static_cast<std::int64_t>(v);
    if (static_cast<double>(as_int) == v) {
      os << as_int;
    } else {
      os << v;
    }
  }

  /** Heterogeneous string hashing: look up by string_view, store strings. */
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  /** Heterogeneous string equality (see SvHash). */
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::vector<std::pair<std::string, double>> items_;
  /** Name -> index into items_ (copies with the set; indices stay valid). */
  std::unordered_map<std::string, std::size_t, SvHash, SvEq> index_;
};

}  // namespace accelflow::stats

#endif  // ACCELFLOW_STATS_COUNTERS_H_
