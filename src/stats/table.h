#ifndef ACCELFLOW_STATS_TABLE_H_
#define ACCELFLOW_STATS_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/**
 * @file
 * Aligned plain-text table printer used by every bench binary to emit the
 * rows/series the paper's tables and figures report.
 */

namespace accelflow::stats {

/** Builds and prints a column-aligned table. */
class Table {
 public:
  /** @param title printed above the table with a separator. */
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /** Sets the header row. Must be called before add_row. */
  Table& set_header(std::vector<std::string> header);

  /** Adds one row of already-formatted cells. */
  Table& add_row(std::vector<std::string> cells);

  /** Convenience cell formatters. */
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_us(double microseconds, int precision = 1);
  static std::string fmt_pct(double fraction, int precision = 1);

  /** Renders the table (aligned, with header rule) to `os`. */
  void print(std::ostream& os) const;

  /** Renders as comma-separated values (for plotting scripts). */
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace accelflow::stats

#endif  // ACCELFLOW_STATS_TABLE_H_
