#ifndef ACCELFLOW_STATS_HISTOGRAM_H_
#define ACCELFLOW_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

/**
 * @file
 * Log-bucketed histogram with bounded relative error, in the spirit of
 * HdrHistogram. Used for latency distributions where millions of samples
 * make exact retention wasteful.
 */

namespace accelflow::stats {

/**
 * Histogram over non-negative integer values (e.g. picoseconds).
 *
 * Values are bucketed with `sub_buckets` linear buckets per power-of-two
 * range, giving a worst-case relative quantile error of 1/sub_buckets.
 * The default (64) keeps quantiles within ~1.6%.
 */
class Histogram {
 public:
  explicit Histogram(unsigned sub_bucket_bits = 6)
      : sub_bucket_bits_(sub_bucket_bits),
        sub_buckets_(1u << sub_bucket_bits) {}

  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t count() const { return total_; }
  std::uint64_t min() const { return total_ ? min_ : 0; }
  std::uint64_t max() const { return total_ ? max_ : 0; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /**
   * Value at quantile q in [0, 1]; q = 0.99 is P99. Returns a bucket
   * representative (midpoint), clamped to the observed min/max.
   */
  std::uint64_t quantile(double q) const;

  /** Fraction of samples with value > threshold. */
  double fraction_above(std::uint64_t threshold) const;

  void reset();

  /** Merges another histogram (must have identical sub_bucket_bits). */
  void merge(const Histogram& o);

 private:
  std::size_t bucket_index(std::uint64_t value) const;
  std::uint64_t bucket_low(std::size_t index) const;
  std::uint64_t bucket_high(std::size_t index) const;

  unsigned sub_bucket_bits_;
  std::uint64_t sub_buckets_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace accelflow::stats

#endif  // ACCELFLOW_STATS_HISTOGRAM_H_
