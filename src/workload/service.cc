#include "workload/service.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace accelflow::workload {

std::uint64_t default_transformed_size(accel::AccelType type,
                                       std::uint64_t bytes) {
  double out = static_cast<double>(bytes);
  switch (type) {
    case accel::AccelType::kCmp:
      out *= 0.35;  // Zstd-class ratio on service payloads.
      break;
    case accel::AccelType::kDcmp:
      out *= 2.857;  // Inverse of the compression ratio.
      break;
    case accel::AccelType::kSer:
      out *= 1.15;  // Wire format framing overhead.
      break;
    case accel::AccelType::kDser:
      out *= 0.87;
      break;
    case accel::AccelType::kEncr:
      out += 16;  // AEAD tag.
      break;
    case accel::AccelType::kDecr:
      out = std::max(out - 16, 64.0);
      break;
    case accel::AccelType::kTcp:
    case accel::AccelType::kRpc:
    case accel::AccelType::kLdb:
      break;  // Header add/strip cancels at this granularity.
  }
  return static_cast<std::uint64_t>(
      std::clamp(out, 64.0, 256.0 * 1024.0));
}

Service::Service(const ServiceSpec& spec, const core::TraceLibrary& lib)
    : spec_(spec) {
  // Resolve trace names and count most-common-path category invocations.
  stage_addrs_.resize(spec_.stages.size());
  for (std::size_t s = 0; s < spec_.stages.size(); ++s) {
    const StageSpec& st = spec_.stages[s];
    if (st.kind == StageSpec::Kind::kCpu) {
      total_cpu_weight_ += st.cpu_weight;
      continue;
    }
    for (const ChainGroup& g : st.groups) {
      const core::AtmAddr addr = lib.addr_of(g.trace);
      stage_addrs_[s].push_back(addr);
      const core::ChainWalk walk =
          core::walk_chain(lib, addr, g.flags.most_common());
      for (const accel::AccelType t : walk.invocations) {
        category_ops_[static_cast<std::size_t>(category_of(t))] +=
            static_cast<double>(g.count);
      }
      most_common_invocations_ +=
          g.count * static_cast<int>(walk.invocations.size());
    }
  }
  assert(total_cpu_weight_ > 0.0 &&
         "a service needs at least one CPU stage");

  // Budget split: category i gets fractions[i] * total_cpu_time, divided
  // evenly across its most-common-path invocations.
  for (std::size_t c = 1; c < kNumTaxCategories; ++c) {
    const double budget = spec_.fractions[c] *
                          static_cast<double>(spec_.total_cpu_time);
    const double ops = category_ops_[c];
    category_cost_[c] =
        ops > 0 ? static_cast<sim::TimePs>(budget / ops) : 0;
  }
  category_cost_[0] = 0;  // AppLogic is charged through app_segment_mean.
}

sim::TimePs Service::app_segment_mean(double weight) const {
  const double budget =
      spec_.fractions[0] * static_cast<double>(spec_.total_cpu_time);
  return static_cast<sim::TimePs>(budget * weight / total_cpu_weight_);
}

sim::TimePs Service::op_cpu_cost(core::ChainContext& ctx,
                                 accel::AccelType type,
                                 std::uint64_t payload_bytes) {
  const sim::TimePs mean = mean_op_cost(type);
  if (mean == 0) return 0;
  // Costs scale sub-linearly with payload size around the service median
  // (per-byte work plus fixed per-message work).
  const double ref = static_cast<double>(spec_.payload_median_bytes);
  const double factor = std::clamp(
      std::sqrt(static_cast<double>(payload_bytes + 256) / (ref + 256)),
      0.5, 4.0);
  return static_cast<sim::TimePs>(
      ctx.rng.lognormal_mean_cv(static_cast<double>(mean) * factor,
                                spec_.cost_cv));
}

std::uint64_t Service::transformed_size(accel::AccelType type,
                                        std::uint64_t bytes) {
  return default_transformed_size(type, bytes);
}

sim::TimePs Service::remote_latency(core::ChainContext& ctx,
                                    core::RemoteKind kind) {
  double mean_us = 0;
  switch (kind) {
    case core::RemoteKind::kDbCacheRead:
      mean_us = spec_.db_cache_read_us;
      break;
    case core::RemoteKind::kDbRead:
      mean_us = spec_.db_read_us;
      break;
    case core::RemoteKind::kDbWrite:
      mean_us = spec_.db_write_us;
      break;
    case core::RemoteKind::kNestedRpc:
      mean_us = spec_.nested_rpc_us;
      break;
    case core::RemoteKind::kHttp:
      mean_us = spec_.http_us;
      break;
    case core::RemoteKind::kNone:
      return 0;
  }
  return sim::microseconds(
      ctx.rng.lognormal_mean_cv(mean_us, spec_.remote_cv));
}

bool Service::nested_call(core::ChainContext& ctx, core::RemoteKind kind,
                          std::function<void(std::uint64_t)> deliver) {
  if (kind != core::RemoteKind::kNestedRpc || !injector_ ||
      callee_indices_.empty()) {
    return false;
  }
  const std::size_t callee = callee_indices_[static_cast<std::size_t>(
      ctx.rng.next_below(callee_indices_.size()))];
  injector_(ctx, callee, std::move(deliver));
  return true;
}

std::uint64_t Service::response_size(core::ChainContext& ctx,
                                     core::RemoteKind kind) {
  // Reads return values (payload-sized); writes and RPC responses return
  // small acknowledgements / results.
  double median = static_cast<double>(spec_.payload_median_bytes);
  switch (kind) {
    case core::RemoteKind::kDbWrite:
      median = 256;
      break;
    case core::RemoteKind::kNestedRpc:
      median *= 0.8;
      break;
    case core::RemoteKind::kHttp:
      median *= 2.0;
      break;
    default:
      break;
  }
  const double v = ctx.rng.lognormal_mean_cv(median, spec_.payload_cv);
  return static_cast<std::uint64_t>(std::clamp(v, 64.0, 256.0 * 1024.0));
}

}  // namespace accelflow::workload
