#ifndef ACCELFLOW_WORKLOAD_SERVICE_H_
#define ACCELFLOW_WORKLOAD_SERVICE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/chain.h"
#include "core/trace_analysis.h"
#include "core/trace_library.h"
#include "sim/random.h"
#include "workload/tax.h"

/**
 * @file
 * Parametric microservice models.
 *
 * A service is described by (1) its Table-IV execution path — CPU segments
 * interleaved with groups of parallel accelerator chains — and (2) a
 * calibration: total unloaded CPU time and its Figure-1 split across tax
 * categories, branch-outcome probabilities, and payload-size distributions.
 * At construction the per-invocation cost of each category is derived by
 * dividing the category budget by the number of invocations on the
 * most-common path, so a Non-acc run of the service reproduces the
 * configured breakdown by construction.
 */

namespace accelflow::workload {

/** Probabilities of each payload condition bit, per chain. */
struct FlagProbs {
  double compressed = 0.10;
  double hit = 0.90;
  double found = 0.97;
  double exception = 0.01;
  double c_compressed = 0.05;

  /** The most likely outcome of every bit (the "most common path"). */
  accel::PayloadFlags most_common() const {
    accel::PayloadFlags f;
    f.compressed = compressed >= 0.5;
    f.hit = hit >= 0.5;
    f.found = found >= 0.5;
    f.exception = exception >= 0.5;
    f.c_compressed = c_compressed >= 0.5;
    return f;
  }

  /** Samples a concrete flag vector. */
  accel::PayloadFlags sample(sim::Rng& rng) const {
    accel::PayloadFlags f;
    f.compressed = rng.bernoulli(compressed);
    f.hit = rng.bernoulli(hit);
    f.found = rng.bernoulli(found);
    f.exception = rng.bernoulli(exception);
    f.c_compressed = rng.bernoulli(c_compressed);
    return f;
  }
};

/** One group of chains launched in parallel from the CPU. */
struct ChainGroup {
  std::string trace;  ///< Template name, e.g. "T9c".
  int count = 1;      ///< Parallel instances (Table IV's "4x(T9-T10)").
  FlagProbs flags;    ///< Branch-outcome probabilities for these chains.
};

/** One step of a service's execution path. */
struct StageSpec {
  enum class Kind : std::uint8_t { kCpu, kChains };
  Kind kind = Kind::kCpu;
  /** kCpu: this stage's share of the service's AppLogic budget. */
  double cpu_weight = 1.0;
  /** kChains: the groups launched concurrently; the stage ends when every
   *  chain has returned control to the core. */
  std::vector<ChainGroup> groups;
};

/** Static description of a service. */
struct ServiceSpec {
  std::string name;
  /** Mean unloaded total CPU time of one invocation on Non-acc (tax
   *  included, network waits excluded). */
  sim::TimePs total_cpu_time = sim::microseconds(100);
  /** Figure-1 split of total_cpu_time (must sum to ~1). */
  TaxFractions fractions = kPaperAverageFractions;
  /** Shape (cv) of per-operation cost draws. */
  double cost_cv = 0.30;
  /** Request payload size: log-normal around this median. */
  std::uint64_t payload_median_bytes = 2600;
  double payload_cv = 1.2;
  std::vector<StageSpec> stages;

  // Remote-response latency means (microseconds) per RemoteKind.
  double db_cache_read_us = 18.0;
  double db_read_us = 80.0;
  double db_write_us = 35.0;
  double nested_rpc_us = 35.0;
  double http_us = 150.0;
  double remote_cv = 0.7;

  /**
   * Colocated services this service's nested RPCs (T9/T9c) target, by
   * name. When non-empty, a nested RPC becomes a *real sub-request* of a
   * random callee on the same machine — so callee latency (and hence the
   * caller's tail) scales with the architecture, as in DeathStarBench.
   * When empty, the sampled nested_rpc_us model applies (off-machine
   * callee).
   */
  std::vector<std::string> rpc_callees;
  /** Wire + client-stack round trip added on top of the callee latency. */
  double rpc_wire_rtt_us = 4.0;
};

/**
 * Runtime form of a service: resolves trace names to ATM addresses,
 * derives per-category per-op costs, and implements core::ChainEnv.
 */
class Service : public core::ChainEnv {
 public:
  Service(const ServiceSpec& spec, const core::TraceLibrary& lib);

  const ServiceSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /** Resolved ATM address of stage `s`, group `g`. */
  core::AtmAddr group_addr(std::size_t s, std::size_t g) const {
    return stage_addrs_[s][g];
  }

  /**
   * Expected accelerator invocations per service invocation on the
   * most-common path (Table IV's "#" column).
   */
  int invocations_most_common_path() const { return most_common_invocations_; }

  /** Expected invocations of each category on the most-common path. */
  const std::array<double, kNumTaxCategories>& category_ops() const {
    return category_ops_;
  }

  /** Mean CPU cost of one op of `type` (before size scaling). */
  sim::TimePs mean_op_cost(accel::AccelType type) const {
    return category_cost_[static_cast<std::size_t>(category_of(type))];
  }

  /** Mean CPU time of one AppLogic segment with weight `w`. */
  sim::TimePs app_segment_mean(double weight) const;

  /** Sum of cpu_weight over the kCpu stages. */
  double total_cpu_weight() const { return total_cpu_weight_; }

  /**
   * Installed by the RequestEngine: injects a sub-request of service
   * `callee` and calls the continuation with the response size when it
   * completes.
   */
  using NestedInjector = std::function<void(
      core::ChainContext&, std::size_t callee,
      std::function<void(std::uint64_t)> deliver)>;
  void set_nested_injector(NestedInjector injector,
                           std::vector<std::size_t> callee_indices) {
    injector_ = std::move(injector);
    callee_indices_ = std::move(callee_indices);
  }

  /** Resolved RPC-callee service indices (set_nested_injector order).
   *  The cluster layer reads these to re-install a cross-shard injector
   *  with the same callee universe. */
  const std::vector<std::size_t>& callee_indices() const {
    return callee_indices_;
  }

  // --- core::ChainEnv --------------------------------------------------
  sim::TimePs op_cpu_cost(core::ChainContext& ctx, accel::AccelType type,
                          std::uint64_t payload_bytes) override;
  std::uint64_t transformed_size(accel::AccelType type,
                                 std::uint64_t bytes) override;
  sim::TimePs remote_latency(core::ChainContext& ctx,
                             core::RemoteKind kind) override;
  std::uint64_t response_size(core::ChainContext& ctx,
                              core::RemoteKind kind) override;
  bool nested_call(core::ChainContext& ctx, core::RemoteKind kind,
                   std::function<void(std::uint64_t)> deliver) override;

 private:
  ServiceSpec spec_;
  NestedInjector injector_;
  std::vector<std::size_t> callee_indices_;
  std::vector<std::vector<core::AtmAddr>> stage_addrs_;
  std::array<double, kNumTaxCategories> category_ops_{};
  std::array<sim::TimePs, kNumTaxCategories> category_cost_{};
  int most_common_invocations_ = 0;
  double total_cpu_weight_ = 0.0;
};

/** Deterministic payload-size transfer functions (documented ratios). */
std::uint64_t default_transformed_size(accel::AccelType type,
                                       std::uint64_t bytes);

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_SERVICE_H_
