#ifndef ACCELFLOW_WORKLOAD_SWEEP_H_
#define ACCELFLOW_WORKLOAD_SWEEP_H_

#include <functional>
#include <memory>
#include <vector>

#include "check/invariant_checker.h"
#include "core/machine.h"
#include "core/orchestrator.h"
#include "workload/experiment.h"
#include "workload/load_generator.h"
#include "workload/request_engine.h"

/**
 * @file
 * The checkpoint-and-fork sweep engine (DESIGN.md §13).
 *
 * A sweep — load points, PE counts, processor generations — re-simulates
 * the same warmup for every point. SweepSession simulates that warmup
 * once, drains the machine to quiescence, captures a full deterministic
 * checkpoint (event calendar, RNG streams, accelerator queues, DMA/NoC/
 * TLB state, stats counters, load-generator cursors), and then *forks*:
 * each run_point() restores the checkpoint in place, applies the point's
 * divergence (a rate factor and/or a machine mutation), and simulates
 * only the measurement window.
 *
 * Determinism contract: run_point(p) yields bit-identical results no
 * matter how many points ran before it on the same session, and identical
 * to a fresh session running only p (tests/test_snapshot_fork.cc). The
 * fork protocol differs from run_experiment() in one deliberate way: the
 * warmup arrival processes stop at `warmup` and the machine drains before
 * the fork, so measurement starts from an idle machine with warm caches,
 * pools and RNG streams rather than mid-flight — figure benches therefore
 * keep the legacy path for their golden snapshots and use fork mode for
 * the (much longer) full-scale sweeps.
 */

namespace accelflow::workload {

/** One divergence point of a forked sweep. */
struct SweepPoint {
  /** Multiplies every configured per-service rate for this point. */
  double rate_factor = 1.0;
  /**
   * Optional machine divergence applied after the checkpoint restore,
   * while the machine is quiescent — e.g. Machine::set_pes_per_accel,
   * set_speedup_scale, or set_generation. Undone by the next restore.
   */
  std::function<void(core::Machine&)> mutate;
};

/**
 * One warm machine shared by many sweep points.
 *
 * Single-threaded like the simulator itself; parallel sweeps run one
 * session per thread (one per sweep *group*), exactly as ParallelRunner
 * runs one experiment per thread. The config's tracer/metrics/checker
 * attachments behave as in run_experiment(), with one addition: under
 * AF_CHECK=1 (or with a caller checker) the checker's state is forked
 * alongside the machine so every point is audited independently.
 */
class SweepSession {
 public:
  /** Builds the machine, services, orchestrator and warmup generators. */
  explicit SweepSession(const ExperimentConfig& config);
  SweepSession(const SweepSession&) = delete;
  SweepSession& operator=(const SweepSession&) = delete;
  ~SweepSession();

  /**
   * Simulates the warmup, drains the machine to quiescence (empty event
   * calendar), and captures the fork checkpoint. Call once, before the
   * first run_point().
   */
  void prepare();

  /** True once prepare() has captured the fork checkpoint. */
  bool prepared() const { return fork_ != nullptr; }

  /** Simulated time of the fork point (>= config.warmup). */
  sim::TimePs fork_time() const { return t_fork_; }

  /**
   * Restores the fork checkpoint, applies `point`, simulates a fresh
   * measurement window (config.measure) plus drain, and harvests the
   * result. Callable any number of times, in any order of points.
   */
  ExperimentResult run_point(const SweepPoint& point = {});

  /** The configuration this session was built from. */
  const ExperimentConfig& config() const { return config_; }

 private:
  struct Fork;  // The checkpoint bundle (machine + harness state).

  ExperimentConfig config_;
  /** Effective QoS policy (config.qos or the AF_QOS defaults); resolved
   *  before machine_ so the accelerators are built with its dispatcher
   *  knobs, exactly as run_experiment() builds them. */
  qos::QosPolicy qos_policy_;
  core::Machine machine_;
  core::TraceLibrary lib_;
  /** QoS admission controller / power governor (DESIGN.md §19); forked
   *  with the machine — buckets, EWMAs and the DVFS level are run state. */
  std::unique_ptr<qos::AdmissionController> admission_;
  std::unique_ptr<qos::PowerGovernor> governor_;
  /** Owned fault injector (config plan or AF_FAULTS); forked with the
   *  machine — its RNG streams are deterministic run state. */
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<check::InvariantChecker> env_checker_;
  check::InvariantChecker* checker_ = nullptr;
  std::vector<std::unique_ptr<Service>> services_;
  std::unique_ptr<core::Orchestrator> orch_;
  std::unique_ptr<RequestEngine> engine_;
  std::vector<std::unique_ptr<LoadGenerator>> gens_;
  std::vector<double> gen_rates_;  ///< Base rate per generator.
  std::unique_ptr<Fork> fork_;
  sim::TimePs t_fork_ = 0;
};

/**
 * find_max_load() on a forked session: the same geometric-grid +
 * bounded-bisection search, with every probe forked from the shared
 * warmup instead of re-simulating it. Call prepare() first (or let this
 * do it).
 */
double find_max_load_forked(SweepSession& session,
                            const std::vector<sim::TimePs>& slos,
                            int search_iters = 7, double lo = 0.05,
                            double hi = 12.0,
                            ExperimentResult* at_peak = nullptr);

/**
 * Runs one forked sweep per group on the shared thread pool: group g
 * builds one SweepSession from groups[g] (one warmup simulation) and runs
 * points[g] serially on it. Results keep input order; determinism matches
 * a serial double loop.
 */
std::vector<std::vector<ExperimentResult>> run_forked_sweeps(
    const std::vector<ExperimentConfig>& groups,
    const std::vector<std::vector<SweepPoint>>& points);

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_SWEEP_H_
