#ifndef ACCELFLOW_WORKLOAD_REQUEST_ENGINE_H_
#define ACCELFLOW_WORKLOAD_REQUEST_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/machine.h"
#include "core/orchestrator.h"
#include "mem/address.h"
#include "qos/admission.h"
#include "sim/arena.h"
#include "stats/latency_recorder.h"
#include "workload/service.h"

/**
 * @file
 * Drives end-to-end service invocations through an orchestrator: walks each
 * request's stage list (CPU segments and parallel chain groups), samples
 * per-chain branch flags and payloads deterministically, and records
 * end-to-end latency per service.
 *
 * Determinism note: request arrival processes, per-request flags, and
 * per-chain cost streams are seeded independently of the architecture under
 * test, so two architectures see the *same* request sequence and the same
 * branch outcomes — experiments are paired.
 */

namespace accelflow::workload {

/** Per-service measurement state. */
struct ServiceStats {
  stats::LatencyRecorder latency;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     ///< Timeout or error outcome.
  std::uint64_t fallbacks = 0;  ///< Requests with >=1 CPU-fallback chain.
  std::uint64_t faulted = 0;    ///< Requests with >=1 fault-recovered chain.
};

/** Executes requests against one machine + orchestrator. */
class RequestEngine {
 public:
  /**
   * @param services one runtime Service per colocated service; the index
   *        doubles as the tenant ID.
   */
  RequestEngine(core::Machine& machine, core::Orchestrator& orch,
                std::vector<Service*> services, std::uint64_t seed);

  /** Injects one invocation of services[s] at the current simulated time. */
  void inject(std::size_t s);

  /**
   * Injects a nested (machine-internal) sub-request of services[s]; fires
   * `deliver` with the response size when it completes, after the wire RTT.
   */
  void inject_internal(std::size_t s, double wire_rtt_us,
                       std::function<void(std::uint64_t)> deliver);

  /** Number of colocated services. */
  std::size_t num_services() const { return services_.size(); }
  const Service& service(std::size_t s) const { return *services_[s]; }

  const ServiceStats& stats(std::size_t s) const { return stats_[s]; }

  /** Resets the per-service recorders (end of warmup). */
  void reset_stats();

  std::uint64_t total_completed() const;
  std::uint64_t total_issued() const;
  std::uint64_t in_flight() const { return active_.size(); }

  /**
   * Deadline budget per accelerator step for SLO runs (Section IV-C);
   * kTimeNever disables stamping. The per-service form lets short-SLO
   * services carry tighter step deadlines than long chains.
   */
  void set_step_deadline_budget(sim::TimePs budget) {
    step_budgets_.assign(services_.size(), budget);
  }
  void set_step_deadline_budgets(std::vector<sim::TimePs> budgets) {
    step_budgets_ = std::move(budgets);
  }

  /**
   * Attaches a QoS admission controller (DESIGN.md §19): every request
   * completion reports its end-to-end latency so the controller's SLO
   * hysteresis tracks the tenant it belongs to. Null detaches; the
   * controller must outlive the engine.
   */
  void set_admission(qos::AdmissionController* admission) {
    admission_ = admission;
  }

  /**
   * Deep copy of the engine's measurement and determinism state
   * (DESIGN.md §13). In-flight requests hold raw pointers into the
   * simulator calendar and are *not* captured: restore() drops them
   * (workload::SweepSession only checkpoints at a quiescent point where
   * none exist). The request-id cursor is captured so forked runs draw
   * the same per-request RNG streams as a straight-through run.
   */
  struct Checkpoint {
    std::vector<ServiceStats> stats;       ///< Per-service recorders.
    accel::RequestId next_id = 1;          ///< Request-id cursor.
    std::vector<sim::TimePs> step_budgets; ///< SLO step budgets.
    std::vector<std::size_t> pool_next;    ///< Buffer-pool cursors.
  };

  /** Captures stats, cursors, and SLO budgets. */
  Checkpoint checkpoint() const;

  /** Restores state captured by checkpoint(); drops in-flight requests
   *  and bulk-frees their arena storage. */
  void restore(const Checkpoint& c);

 private:
  struct ActiveRequest {
    std::size_t service = 0;
    accel::RequestId id = 0;
    int core = 0;
    std::size_t stage = 0;
    int pending_chains = 0;
    bool failed = false;
    bool fell_back = false;
    bool faulted = false;
    sim::TimePs arrived = 0;
    sim::Rng rng;
    /** Arena-backed chain contexts of the current stage (chain_arena_). */
    std::vector<core::ChainContext*> chains;
    /** Set for nested sub-requests: fired with the response size. */
    std::function<void(std::uint64_t)> on_complete;
    sim::TimePs wire_rtt = 0;
  };

  ActiveRequest* create_request(std::size_t s);
  void advance(ActiveRequest* r);
  void launch_chains(ActiveRequest* r, const StageSpec& stage);
  void complete(ActiveRequest* r);
  /** Returns the current stage's chain contexts to the arena. */
  void release_chains(ActiveRequest* r);
  mem::VirtAddr buffer_for(std::size_t service, std::uint64_t bytes);

  core::Machine& machine_;
  core::Orchestrator& orch_;
  std::vector<Service*> services_;
  std::vector<ServiceStats> stats_;
  std::uint64_t seed_;
  accel::RequestId next_id_ = 1;
  std::vector<sim::TimePs> step_budgets_;
  qos::AdmissionController* admission_ = nullptr;  ///< SLO latency feedback.
  std::unordered_map<accel::RequestId, ActiveRequest*> active_;
  // Hot-path arenas: requests and chain contexts churn at the arrival
  // rate; slab recycling avoids a malloc/free pair per object and lets
  // restore() bulk-free everything in flight.
  sim::Arena<ActiveRequest> request_arena_;
  sim::Arena<core::ChainContext> chain_arena_;
  // Per-service rotating buffer pools: realistic TLB locality.
  struct BufferPool {
    std::unique_ptr<mem::AddressSpace> space;
    std::vector<mem::VirtAddr> buffers;
    std::size_t next = 0;
  };
  std::vector<BufferPool> pools_;
};

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_REQUEST_ENGINE_H_
