#ifndef ACCELFLOW_WORKLOAD_EXPERIMENT_H_
#define ACCELFLOW_WORKLOAD_EXPERIMENT_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "check/invariant_checker.h"
#include "core/orch_baselines.h"
#include "core/orchestrator.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "qos/admission.h"
#include "qos/power.h"
#include "workload/load_generator.h"
#include "workload/request_engine.h"
#include "workload/suites.h"

/**
 * @file
 * One-call experiment harness used by every bench binary: builds a machine,
 * registers the trace templates, instantiates a suite, applies a load, and
 * reports per-service latency plus machine-level activity.
 */

namespace accelflow::workload {

/** Full description of one experiment run. */
struct ExperimentConfig {
  core::OrchKind kind = core::OrchKind::kAccelFlow;
  core::MachineConfig machine;
  core::EngineConfig engine;
  std::vector<ServiceSpec> specs;
  LoadGenerator::Model load_model = LoadGenerator::Model::kTrace;
  /** Per-service mean RPS; if empty, `rps_per_service` applies to all. */
  std::vector<double> per_service_rps;
  double rps_per_service = 13400.0;
  sim::TimePs warmup = sim::milliseconds(20);
  sim::TimePs measure = sim::milliseconds(120);
  sim::TimePs drain = sim::milliseconds(30);
  std::uint64_t seed = 1;
  /** Deadline budget per accelerator step (SLO runs); kTimeNever = off. */
  sim::TimePs step_deadline_budget = sim::kTimeNever;
  /** Per-service override of step_deadline_budget (empty = uniform). */
  std::vector<sim::TimePs> step_deadline_budgets;

  /**
   * Optional span tracer attached to the run's machine (see obs/tracer.h);
   * nullptr (the default) disables tracing entirely. Attach at most one
   * tracer to one experiment point when sweeping in parallel — the tracer
   * is single-simulation state.
   */
  obs::Tracer* tracer = nullptr;
  /**
   * Optional metrics registry snapshotted at the end of the run with the
   * machine- and orchestrator-level counters (see obs/metrics.h).
   */
  obs::MetricsRegistry* metrics = nullptr;
  /**
   * Optional runtime invariant checker (see check/invariant_checker.h):
   * attached to the run's machine before any load is applied, final-
   * audited after the drain, and detached before the machine is torn
   * down. Violations accumulate in the checker for the caller to inspect.
   * Like the tracer, attach one checker to one experiment point when
   * sweeping in parallel. Independent of this field, setting AF_CHECK=1
   * in the environment attaches an internal checker to *every* run and
   * aborts with a report on any violation — the test suite runs this way.
   */
  check::InvariantChecker* checker = nullptr;

  /**
   * Deterministic fault-injection plan (see fault/fault_plan.h); the
   * default plan injects nothing. When enabled, the run constructs its own
   * fault::FaultInjector, attaches it to the machine, and the AccelFlow
   * orchestrator's resilience policy (hop watchdogs, retries, health
   * quarantine — DESIGN.md §14) activates. Independent of this field,
   * setting AF_FAULTS=<rate> in the environment applies a uniform plan at
   * that rate to every run (TESTING.md). Engine-family orchestrators
   * only: the baselines carry no recovery policy, so injecting faults
   * into them would strand chains forever rather than measure anything —
   * baseline runs ignore the plan and stay fault-free.
   */
  fault::FaultPlan faults;

  /**
   * Multi-tenant QoS policy (DESIGN.md §19). When enabled, the run
   * constructs a qos::AdmissionController at the load-generator boundary,
   * threads the policy into the engine (per-tenant chain quotas, entry
   * priorities) and the machine (reserved input slots, priority aging).
   * The default empty policy is a behavioral no-op. Independent of this
   * field, AF_QOS=1 in the environment applies
   * qos::QosPolicy::isolation_defaults() to runs with no explicit policy.
   */
  qos::QosPolicy qos;

  /**
   * Package power cap (DESIGN.md §19): budget_w > 0 attaches a
   * qos::PowerGovernor that DVFS-scales every accelerator's PE speed to
   * hold the modeled power under the budget. Default: off.
   */
  qos::PowerCapConfig power;
};

/** Per-service outcome. */
struct ServiceResult {
  std::string name;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t faulted = 0;  ///< Needed fault recovery (DESIGN.md §14).
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  stats::LatencyRecorder latency;
};

/** Aggregate outcome of one run. */
struct ExperimentResult {
  std::vector<ServiceResult> services;
  double avg_mean_us = 0;
  double avg_p99_us = 0;

  // Machine activity over the measured window (approximately: whole run).
  double core_utilization = 0;
  std::array<double, accel::kNumAccelTypes> accel_utilization{};
  double dma_utilization = 0;
  sim::TimePs core_busy = 0;
  sim::TimePs accel_busy = 0;
  std::array<sim::TimePs, accel::kNumAccelTypes> accel_busy_by_type{};
  sim::TimePs elapsed = 0;  ///< Total simulated duration of the run.
  sim::TimePs dispatcher_busy = 0;
  sim::TimePs manager_busy = 0;
  sim::TimePs dma_busy = 0;
  sim::TimePs orchestration_time = 0;  ///< Baseline coordination time.
  std::uint64_t interrupts = 0;
  std::uint64_t manager_events = 0;

  core::EngineStats engine;       ///< AccelFlow-family runs.
  core::BaselineStats baseline;   ///< Baseline runs.
  fault::FaultStats faults;       ///< Injected faults (zero when disabled).

  // QoS accounting (DESIGN.md §19; empty/zero unless a policy was active).
  std::vector<qos::TenantAdmissionStats> qos_tenants;  ///< By tenant id.
  std::uint64_t qos_shed_total = 0;  ///< Arrivals shed at the boundary.
  qos::PowerStats power;             ///< Governor stats (budget_w > 0).

  // High-overhead event rates (Section VII-B.6).
  std::uint64_t overflow_enqueues = 0;
  std::uint64_t overflow_rejections = 0;
  std::uint64_t accel_invocations = 0;
  std::uint64_t tlb_lookups = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t deadline_misses = 0;

  std::uint64_t total_completed() const {
    std::uint64_t n = 0;
    for (const auto& s : services) n += s.completed;
    return n;
  }
};

/** Runs one experiment. */
ExperimentResult run_experiment(const ExperimentConfig& config);

/** True when AF_CHECK=1 (anything but "0"/"") is set in the environment:
 *  every run attaches an internal invariant checker and aborts on any
 *  violation. The test suite runs this way (TESTING.md). */
bool af_check_enabled();

/** The AF_FAULTS environment knob: a per-site fault rate in [0, 1] that
 *  applies fault::FaultPlan::uniform(rate) to every run whose config does
 *  not already carry a plan. Returns 0 when unset or unparsable. */
double af_fault_rate();

/** True when AF_QOS=1 (anything but "0"/"") is set in the environment:
 *  runs whose config carries no explicit QoS policy get
 *  qos::QosPolicy::isolation_defaults() instead (DESIGN.md §19). */
bool af_qos_enabled();

/** The run's effective QoS policy: config.qos, or — under AF_QOS=1 when
 *  that is empty — qos::QosPolicy::isolation_defaults() for the config's
 *  services. Shared by run_experiment() and SweepSession. */
qos::QosPolicy resolve_qos_policy(const ExperimentConfig& config);

/** Copies `mc` with `policy`'s dispatcher knobs (reserved input slots,
 *  aging quantum) applied, so accelerators are built with them. */
core::MachineConfig with_qos(core::MachineConfig mc,
                             const qos::QosPolicy& policy);

// A third environment knob rides along the same way: AF_SCHED=wheel runs
// every machine's event calendar on the hierarchical timing wheel instead
// of the 4-ary heap (MachineConfig::sched, sim::af_sched_wheel_enabled(),
// DESIGN.md §18). Both backends are bit-identical by contract, so results
// never change — the CI sanitize job reruns the suite under it.

/**
 * Collects the end-of-run measurements — per-service latency, machine
 * activity, orchestrator counters, and (optionally) a metrics-registry
 * snapshot — from a machine that has finished simulating. Shared by
 * run_experiment() and the checkpoint-and-fork SweepSession so both
 * report byte-identical structures for the same simulated timeline.
 */
ExperimentResult harvest_result(core::Machine& machine,
                                const core::Orchestrator& orch,
                                const RequestEngine& engine,
                                obs::MetricsRegistry* metrics = nullptr);

/**
 * Unloaded per-service latency (P50 at a trickle load) — the basis of the
 * paper's SLO = 5x unloaded service execution time.
 */
std::vector<sim::TimePs> unloaded_latency(ExperimentConfig config,
                                          core::OrchKind kind);

/**
 * Maximum per-service load multiplier (applied to the configured rates)
 * such that every service's P99 stays within its SLO. Binary search.
 *
 * @param slos per-service latency SLOs.
 * @return the multiplier and, via out parameters if non-null, the result
 *         at the found operating point.
 */
double find_max_load(const ExperimentConfig& base,
                     const std::vector<sim::TimePs>& slos,
                     int search_iters = 7, double lo = 0.05,
                     double hi = 12.0, ExperimentResult* at_peak = nullptr);

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_EXPERIMENT_H_
