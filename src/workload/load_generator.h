#ifndef ACCELFLOW_WORKLOAD_LOAD_GENERATOR_H_
#define ACCELFLOW_WORKLOAD_LOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/request_engine.h"

/**
 * @file
 * Open-loop load generation.
 *
 * Three arrival models reproduce the paper's drivers:
 *  - Poisson at a fixed rate (the Fig. 12 load sweeps),
 *  - a synthetic production trace with per-service base rates averaging
 *    13.4K RPS and bursty rate modulation (the Alibaba traces of [54]),
 *  - a bursty ON/OFF process with heavy-tailed bursts (the Azure serverless
 *    traces of [87]).
 */

namespace accelflow::workload {

/** Per-service base rates used with the synthetic production trace. */
std::vector<double> alibaba_like_rates(std::size_t num_services,
                                       double average_rps = 13400.0,
                                       std::uint64_t seed = 0xA11BABA);

/** Self-scheduling open-loop arrival process for one service. */
class LoadGenerator {
 public:
  enum class Model : std::uint8_t {
    kPoisson,   ///< Constant-rate Poisson.
    kTrace,     ///< Rate-modulated Poisson (Alibaba-like burstiness).
    kBursty,    ///< ON/OFF bursts (Azure-like serverless invocations).
  };

  /**
   * Starts generating invocations of `service` into `engine`.
   *
   * @param rps mean arrival rate.
   * @param until stop issuing at this simulated time.
   */
  LoadGenerator(sim::Simulator& sim, RequestEngine& engine,
                std::size_t service, Model model, double rps,
                sim::TimePs until, std::uint64_t seed);

  std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next();
  double current_rate();

  sim::Simulator& sim_;
  RequestEngine& engine_;
  std::size_t service_;
  Model model_;
  double rps_;
  sim::TimePs until_;
  sim::Rng rng_;
  std::uint64_t generated_ = 0;
  // kTrace: piecewise-constant rate multiplier, redrawn every window.
  double rate_multiplier_ = 1.0;
  sim::TimePs window_end_ = 0;
  // kBursty: ON/OFF state (starts OFF so the first toggle opens a burst).
  bool on_ = false;
  sim::TimePs phase_end_ = 0;
};

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_LOAD_GENERATOR_H_
