#ifndef ACCELFLOW_WORKLOAD_LOAD_GENERATOR_H_
#define ACCELFLOW_WORKLOAD_LOAD_GENERATOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "qos/admission.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/request_engine.h"

/**
 * @file
 * Open-loop load generation.
 *
 * Three arrival models reproduce the paper's drivers:
 *  - Poisson at a fixed rate (the Fig. 12 load sweeps),
 *  - a synthetic production trace with per-service base rates averaging
 *    13.4K RPS and bursty rate modulation (the Alibaba traces of [54]),
 *  - a bursty ON/OFF process with heavy-tailed bursts (the Azure serverless
 *    traces of [87]).
 */

namespace accelflow::workload {

/** Per-service base rates used with the synthetic production trace. */
std::vector<double> alibaba_like_rates(std::size_t num_services,
                                       double average_rps = 13400.0,
                                       std::uint64_t seed = 0xA11BABA);

/**
 * Shard-ownership decision for one arrival (the cluster layer's
 * load-balancer tier implements this — see cluster/balancer.h).
 *
 * Under sharded serving every shard runs *replicated* arrival streams:
 * identical LoadGenerators drawing from identical RNG states, so the
 * arrival calendars agree bit-for-bit across shards with no cross-shard
 * communication. A router then decides which shard *owns* each arrival;
 * the owner injects it, every other shard drops it on the floor. For
 * that to stay consistent, route() must be a pure function of its
 * arguments plus state that is itself identical on every shard (e.g. the
 * barrier-synchronized load snapshot) — never of per-shard state.
 */
class ArrivalRouter {
 public:
  virtual ~ArrivalRouter() = default;

  /**
   * Returns the shard index owning arrival number `seq` of `service`.
   * `seq` is the generator's running arrival count (identical across the
   * replicated streams); `now` the arrival's simulated time.
   */
  virtual std::size_t route(std::size_t service, std::uint64_t seq,
                            sim::TimePs now) const = 0;
};

/** Self-scheduling open-loop arrival process for one service. */
class LoadGenerator {
 public:
  enum class Model : std::uint8_t {
    kPoisson,   ///< Constant-rate Poisson.
    kTrace,     ///< Rate-modulated Poisson (Alibaba-like burstiness).
    kBursty,    ///< ON/OFF bursts (Azure-like serverless invocations).
  };

  /**
   * Starts generating invocations of `service` into `engine`.
   *
   * @param rps mean arrival rate.
   * @param until stop issuing at this simulated time.
   */
  LoadGenerator(sim::Simulator& sim, RequestEngine& engine,
                std::size_t service, Model model, double rps,
                sim::TimePs until, std::uint64_t seed);

  std::uint64_t generated() const { return generated_; }

  /** Arrivals this generator actually injected (== generated() without a
   *  router; the owned subset of the replicated stream with one). */
  std::uint64_t admitted() const { return admitted_; }

  /** Owned arrivals refused by the admission controller (DESIGN.md §19). */
  std::uint64_t shed() const { return shed_; }

  /**
   * Attaches a QoS admission controller (DESIGN.md §19): from now on each
   * owned arrival is offered to `admission` first and dropped — counted in
   * shed(), never injected — when it declines. Null detaches. Shedding
   * happens *after* the ownership decision, so replicated cross-shard
   * streams stay aligned; the controller must outlive the generator.
   */
  void set_admission(qos::AdmissionController* admission) {
    admission_ = admission;
  }

  /**
   * Attaches a shard-ownership router: from now on only arrivals that
   * route() assigns to `self_shard` are injected, though every arrival
   * still advances the (replicated) stream identically. Null detaches
   * (every arrival owned). The router must outlive the generator.
   */
  void set_router(const ArrivalRouter* router, std::size_t self_shard) {
    router_ = router;
    self_shard_ = self_shard;
  }

  /**
   * Deep copy of the generator's arrival-process state (DESIGN.md §13).
   * The pending self-scheduling event lives in the simulator calendar and
   * is captured by sim::Snapshot, not here; a *stopped* generator (one
   * whose last event fell past `until_`) is revived via resume().
   */
  struct Checkpoint {
    double rps = 0;                        ///< Mean arrival rate.
    sim::TimePs until = 0;                 ///< Issue cutoff.
    std::array<std::uint64_t, 4> rng{};    ///< Arrival stream state.
    std::uint64_t generated = 0;           ///< Invocations issued so far.
    std::uint64_t admitted = 0;            ///< Owned arrivals injected.
    std::uint64_t shed = 0;                ///< Owned arrivals refused (QoS).
    double rate_multiplier = 1.0;          ///< kTrace window multiplier.
    sim::TimePs window_end = 0;            ///< kTrace window boundary.
    bool on = false;                       ///< kBursty ON/OFF state.
    sim::TimePs phase_end = 0;             ///< kBursty phase boundary.
  };

  /** Captures the arrival-process state. */
  Checkpoint checkpoint() const {
    return Checkpoint{rps_,        until_,    rng_.state(),
                      generated_,  admitted_, shed_,
                      rate_multiplier_,       window_end_,
                      on_,         phase_end_};
  }

  /** Restores state captured by checkpoint(). Does not schedule events:
   *  pair with resume() (or a simulator-calendar restore). */
  void restore(const Checkpoint& c) {
    rps_ = c.rps;
    until_ = c.until;
    rng_.set_state(c.rng);
    generated_ = c.generated;
    admitted_ = c.admitted;
    shed_ = c.shed;
    rate_multiplier_ = c.rate_multiplier;
    window_end_ = c.window_end;
    on_ = c.on;
    phase_end_ = c.phase_end;
  }

  /**
   * Revives a stopped generator at the current simulated time: sets a new
   * rate and cutoff, then schedules the next arrival. Used by the fork
   * engine to re-arm warmup generators at each sweep point's target rate.
   * Only call when no arrival event for this generator is pending.
   */
  void resume(double rps, sim::TimePs until) {
    rps_ = rps;
    until_ = until;
    schedule_next();
  }

 private:
  void schedule_next();
  double current_rate();

  sim::Simulator& sim_;
  RequestEngine& engine_;
  std::size_t service_;
  Model model_;
  double rps_;
  sim::TimePs until_;
  sim::Rng rng_;
  std::uint64_t generated_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;                 ///< Arrivals the QoS layer refused.
  const ArrivalRouter* router_ = nullptr;  ///< Shard-ownership filter.
  std::size_t self_shard_ = 0;             ///< Shard this generator feeds.
  qos::AdmissionController* admission_ = nullptr;  ///< QoS shed decision.
  // kTrace: piecewise-constant rate multiplier, redrawn every window.
  double rate_multiplier_ = 1.0;
  sim::TimePs window_end_ = 0;
  // kBursty: ON/OFF state (starts OFF so the first toggle opens a burst).
  bool on_ = false;
  sim::TimePs phase_end_ = 0;
};

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_LOAD_GENERATOR_H_
