#include "workload/load_generator.h"

#include <algorithm>
#include <cmath>

namespace accelflow::workload {

std::vector<double> alibaba_like_rates(std::size_t num_services,
                                       double average_rps,
                                       std::uint64_t seed) {
  // Production inter-service rates are heavily skewed; draw lognormal
  // factors and normalize so the suite average matches the paper's 13.4K.
  sim::Rng rng(seed);
  std::vector<double> rates(num_services);
  double sum = 0;
  for (double& r : rates) {
    r = rng.lognormal_mean_cv(1.0, 0.55);
    sum += r;
  }
  const double scale = average_rps * static_cast<double>(num_services) / sum;
  for (double& r : rates) r *= scale;
  return rates;
}

LoadGenerator::LoadGenerator(sim::Simulator& sim, RequestEngine& engine,
                             std::size_t service, Model model, double rps,
                             sim::TimePs until, std::uint64_t seed)
    : sim_(sim),
      engine_(engine),
      service_(service),
      model_(model),
      rps_(rps),
      until_(until),
      rng_(seed) {
  schedule_next();
}

double LoadGenerator::current_rate() {
  switch (model_) {
    case Model::kPoisson:
      return rps_;
    case Model::kTrace: {
      // Redraw the rate multiplier every 10ms window: sustained bursts and
      // lulls like the production traces exhibit (Alibaba's inter-service
      // rates are strongly bursty at small time scales).
      if (sim_.now() >= window_end_) {
        rate_multiplier_ = rng_.lognormal_mean_cv(1.0, 0.70);
        window_end_ = sim_.now() + sim::milliseconds(10);
      }
      return rps_ * rate_multiplier_;
    }
    case Model::kBursty: {
      // Serverless invocations: ON bursts at ~4x the mean separated by
      // quiet periods. Duty cycle ~28% keeps the mean at rps_.
      if (sim_.now() >= phase_end_) {
        on_ = !on_;
        const double mean_ms = on_ ? 12.0 : 30.0;
        // Clamp the draw: a single pathological phase must not silence a
        // function for a whole measurement window.
        const double dur =
            std::clamp(rng_.exponential(mean_ms), 1.0,
                       (on_ ? 4.0 : 2.5) * mean_ms);
        phase_end_ = sim_.now() + sim::milliseconds(dur);
      }
      return on_ ? rps_ * 3.5 : rps_ * 0.0;
    }
  }
  return rps_;
}

void LoadGenerator::schedule_next() {
  const double rate = current_rate();
  sim::TimePs gap;
  if (rate <= 0.0) {
    // OFF phase: re-evaluate at the phase boundary.
    gap = phase_end_ > sim_.now() ? phase_end_ - sim_.now()
                                  : sim::milliseconds(1);
  } else {
    gap = static_cast<sim::TimePs>(
        std::max(1.0, rng_.exponential(1e12 / rate)));
  }
  const sim::TimePs next = sim_.now() + gap;
  if (next >= until_) return;
  sim_.schedule_at(next, [this, rate] {
    if (rate > 0.0) {
      // With a router attached, every arrival advances the replicated
      // stream but only the owned subset is injected; without one, this
      // is exactly the single-machine path (inject everything).
      const std::uint64_t seq = generated_++;
      if (router_ == nullptr ||
          router_->route(service_, seq, sim_.now()) == self_shard_) {
        // Shed decision strictly after the ownership decision: replicated
        // cross-shard streams must agree on seq regardless of QoS state.
        if (admission_ == nullptr ||
            admission_->admit(static_cast<accel::TenantId>(service_))) {
          engine_.inject(service_);
          ++admitted_;
        } else {
          ++shed_;
        }
      }
    }
    schedule_next();
  });
}

}  // namespace accelflow::workload
