#include "workload/request_engine.h"

#include <algorithm>
#include <cassert>

namespace accelflow::workload {

namespace {
/** Mixes values into a 64-bit seed (splitmix-style). */
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x;
}
}  // namespace

RequestEngine::RequestEngine(core::Machine& machine, core::Orchestrator& orch,
                             std::vector<Service*> services,
                             std::uint64_t seed)
    : machine_(machine),
      orch_(orch),
      services_(std::move(services)),
      stats_(services_.size()),
      seed_(seed) {
  pools_.resize(services_.size());
  for (std::size_t s = 0; s < services_.size(); ++s) {
    pools_[s].space = std::make_unique<mem::AddressSpace>(
        static_cast<std::uint32_t>(s + 1));
    // 32 rotating 64KB buffers per service (hot, reused: realistic
    // IOTLB locality).
    for (int i = 0; i < 32; ++i) {
      pools_[s].buffers.push_back(pools_[s].space->allocate(64 * 1024));
    }
  }

  // Wire up nested-RPC callees: a T9 chain of service A becomes a real
  // sub-request of one of A's configured callee services on this machine.
  for (std::size_t s = 0; s < services_.size(); ++s) {
    const auto& callee_names = services_[s]->spec().rpc_callees;
    if (callee_names.empty()) continue;
    std::vector<std::size_t> indices;
    for (const std::string& name : callee_names) {
      for (std::size_t t = 0; t < services_.size(); ++t) {
        if (services_[t]->name() == name) {
          indices.push_back(t);
          break;
        }
      }
    }
    if (indices.empty()) continue;
    const double rtt = services_[s]->spec().rpc_wire_rtt_us;
    services_[s]->set_nested_injector(
        [this, rtt](core::ChainContext&, std::size_t callee,
                    std::function<void(std::uint64_t)> deliver) {
          inject_internal(callee, rtt, std::move(deliver));
        },
        std::move(indices));
  }
}

mem::VirtAddr RequestEngine::buffer_for(std::size_t service,
                                        std::uint64_t /*bytes*/) {
  BufferPool& pool = pools_[service];
  const mem::VirtAddr va = pool.buffers[pool.next];
  pool.next = (pool.next + 1) % pool.buffers.size();
  return va;
}

RequestEngine::ActiveRequest* RequestEngine::create_request(std::size_t s) {
  assert(s < services_.size());
  ActiveRequest* req = request_arena_.create();
  req->service = s;
  req->id = next_id_++;
  req->arrived = machine_.sim().now();
  req->rng.reseed(mix(mix(seed_, s), req->id));
  // The LdB accelerator's effect: the request handler lands on the
  // least-loaded core.
  req->core = machine_.cores().least_loaded();
  ++stats_[s].issued;
  active_[req->id] = req;
  return req;
}

void RequestEngine::inject(std::size_t s) { advance(create_request(s)); }

void RequestEngine::inject_internal(
    std::size_t s, double wire_rtt_us,
    std::function<void(std::uint64_t)> deliver) {
  ActiveRequest* req = create_request(s);
  req->on_complete = std::move(deliver);
  req->wire_rtt = sim::microseconds(wire_rtt_us);
  advance(req);
}

void RequestEngine::advance(ActiveRequest* r) {
  const Service& svc = *services_[r->service];
  if (r->stage >= svc.spec().stages.size()) {
    complete(r);
    return;
  }
  const StageSpec& stage = svc.spec().stages[r->stage];
  if (stage.kind == StageSpec::Kind::kCpu) {
    // Application-logic segment on the assigned core, scaled by the
    // modeled processor generation's single-thread speed.
    const double mean =
        static_cast<double>(svc.app_segment_mean(stage.cpu_weight)) /
        machine_.cores().params().app_speed;
    const auto duration = static_cast<sim::TimePs>(
        r->rng.lognormal_mean_cv(std::max(mean, 1.0), svc.spec().cost_cv));
    ++r->stage;
    machine_.cores().run_on(r->core, duration, [this, r] { advance(r); });
    return;
  }
  launch_chains(r, stage);
}

void RequestEngine::launch_chains(ActiveRequest* r, const StageSpec& stage) {
  Service& svc = *services_[r->service];
  const std::size_t stage_index = r->stage;
  ++r->stage;

  release_chains(r);
  int total = 0;
  for (const ChainGroup& g : stage.groups) total += g.count;
  r->pending_chains = total;
  assert(total > 0);

  std::uint32_t chain_no = 0;
  for (std::size_t g = 0; g < stage.groups.size(); ++g) {
    const ChainGroup& group = stage.groups[g];
    const core::AtmAddr addr = svc.group_addr(stage_index, g);
    for (int k = 0; k < group.count; ++k) {
      core::ChainContext* ctx = chain_arena_.create();
      ctx->request = r->id;
      ctx->chain = chain_no++;
      ctx->tenant = static_cast<accel::TenantId>(r->service);
      ctx->core = r->core;
      ctx->flags = group.flags.sample(r->rng);
      ctx->initial_bytes = std::clamp<std::uint64_t>(
          static_cast<std::uint64_t>(r->rng.lognormal_mean_cv(
              static_cast<double>(svc.spec().payload_median_bytes),
              svc.spec().payload_cv)),
          64, 256 * 1024);
      ctx->buffer_va = buffer_for(r->service, ctx->initial_bytes);
      ctx->env = &svc;
      ctx->rng.reseed(mix(mix(seed_ ^ 0xC4A1, r->id), ctx->chain));
      ctx->step_deadline_budget = r->service < step_budgets_.size()
                                      ? step_budgets_[r->service]
                                      : sim::kTimeNever;
      ctx->on_done = [this, r](const core::ChainResult& res) {
        if (!res.ok || res.timeout) r->failed = true;
        if (res.cpu_fallback) r->fell_back = true;
        if (res.faulted) r->faulted = true;
        if (--r->pending_chains == 0) advance(r);
      };
      r->chains.push_back(ctx);
      orch_.run_chain(ctx, addr);
    }
  }
}

void RequestEngine::complete(ActiveRequest* r) {
  ServiceStats& st = stats_[r->service];
  ++st.completed;
  if (r->failed) ++st.failed;
  if (r->fell_back) ++st.fallbacks;
  if (r->faulted) ++st.faulted;
  st.latency.record(machine_.sim().now() - r->arrived);
  if (admission_ != nullptr) {
    // SLO feedback (DESIGN.md §19): every completion — top-level or
    // nested — reports its latency to the shed hysteresis.
    admission_->record_latency(static_cast<accel::TenantId>(r->service),
                               machine_.sim().now() - r->arrived);
  }
  if (r->on_complete) {
    // Nested sub-request: hand the response back to the caller after the
    // wire round trip.
    const std::uint64_t resp = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(r->rng.lognormal_mean_cv(
            static_cast<double>(
                services_[r->service]->spec().payload_median_bytes),
            services_[r->service]->spec().payload_cv)),
        64, 256 * 1024);
    machine_.sim().schedule_after(
        r->wire_rtt,
        [cb = std::move(r->on_complete), resp] { cb(resp); });
  }
  release_chains(r);
  active_.erase(r->id);
  request_arena_.destroy(r);
}

void RequestEngine::release_chains(ActiveRequest* r) {
  for (core::ChainContext* c : r->chains) chain_arena_.destroy(c);
  r->chains.clear();
}

RequestEngine::Checkpoint RequestEngine::checkpoint() const {
  Checkpoint c;
  c.stats = stats_;
  c.next_id = next_id_;
  c.step_budgets = step_budgets_;
  c.pool_next.reserve(pools_.size());
  for (const BufferPool& p : pools_) c.pool_next.push_back(p.next);
  return c;
}

void RequestEngine::restore(const Checkpoint& c) {
  assert(c.stats.size() == stats_.size());
  assert(c.pool_next.size() == pools_.size());
  stats_ = c.stats;
  next_id_ = c.next_id;
  step_budgets_ = c.step_budgets;
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    pools_[i].next = c.pool_next[i];
  }
  // Any in-flight requests belong to the timeline being abandoned; their
  // calendar events are replaced wholesale by the simulator restore.
  active_.clear();
  chain_arena_.clear();
  request_arena_.clear();
}

void RequestEngine::reset_stats() {
  for (ServiceStats& s : stats_) {
    s.latency.reset();
    s.issued = 0;
    s.completed = 0;
    s.failed = 0;
    s.fallbacks = 0;
    s.faulted = 0;
  }
}

std::uint64_t RequestEngine::total_completed() const {
  std::uint64_t n = 0;
  for (const ServiceStats& s : stats_) n += s.completed;
  return n;
}

std::uint64_t RequestEngine::total_issued() const {
  std::uint64_t n = 0;
  for (const ServiceStats& s : stats_) n += s.issued;
  return n;
}

}  // namespace accelflow::workload
