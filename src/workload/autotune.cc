#include "workload/autotune.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>
#include <utility>

namespace accelflow::workload {

namespace {

using critpath::Category;

/** Accelerator-class indices ordered by descending share of `by_accel`,
 *  zero-share classes excluded. */
std::vector<std::size_t> ranked_accels(
    const std::array<sim::TimePs, accel::kNumAccelTypes>& by_accel) {
  std::vector<std::size_t> order;
  for (std::size_t a = 0; a < accel::kNumAccelTypes; ++a) {
    if (by_accel[a] > 0) order.push_back(a);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return by_accel[a] > by_accel[b];
                   });
  return order;
}

std::string accel_name(std::size_t idx) {
  return std::string(
      accel::name_of(static_cast<accel::AccelType>(idx)));
}

}  // namespace

void AutoTuneKnobs::apply(core::Machine& machine) const {
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    machine.set_pes_for(t, pes[accel::index_of(t)]);
  }
  machine.set_accel_queue_entries(queue_entries);
  machine.set_dma_engines(dma_engines);
}

std::string AutoTuneKnobs::describe() const {
  std::string s = "pes=[";
  for (std::size_t a = 0; a < accel::kNumAccelTypes; ++a) {
    if (a != 0) s += ',';
    s += std::to_string(pes[a]);
  }
  s += "] queue=" + std::to_string(queue_entries) +
       " dma=" + std::to_string(dma_engines);
  return s;
}

AutoTuner::AutoTuner(SweepSession& session, Options options)
    : session_(session),
      options_(options),
      tracer_(session.config().tracer) {
  assert(tracer_ != nullptr &&
         "AutoTuner needs ExperimentConfig::tracer set on the session");
}

double AutoTuner::probe(const AutoTuneKnobs& knobs,
                        critpath::Analyzer* analysis) {
  // A fresh ring per probe: the attribution must cover exactly this
  // probe's measurement window, not the accumulated session history.
  tracer_->clear();
  SweepPoint point;
  point.mutate = [&knobs](core::Machine& m) { knobs.apply(m); };
  const ExperimentResult result = session_.run_point(point);
  if (analysis != nullptr) {
    critpath::Analyzer::Options opts;
    for (const ServiceSpec& spec : session_.config().specs) {
      opts.service_names.push_back(spec.name);
    }
    *analysis = critpath::Analyzer(std::move(opts));
    analysis->analyze(*tracer_);
  }
  return result.avg_mean_us;
}

std::vector<AutoTuner::Move> AutoTuner::propose(
    const critpath::ServiceAttribution& attribution,
    const AutoTuneKnobs& current) const {
  // Rank categories by attributed time, most expensive first.
  std::array<std::size_t, critpath::kNumCategories> order;
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return attribution.by_category[a] >
                            attribution.by_category[b];
                   });

  std::vector<Move> moves;
  char buf[96];
  auto add = [&](const AutoTuneKnobs& knobs, Category cat) {
    Move m;
    m.knobs = knobs;
    m.action = buf;
    m.bottleneck = cat;
    moves.push_back(std::move(m));
  };
  for (const std::size_t c : order) {
    if (attribution.by_category[c] == 0) break;
    const auto cat = static_cast<Category>(c);
    switch (cat) {
      case Category::kQueue:
      case Category::kPeService: {
        // Queue residency and PE occupancy both starve on PE bandwidth;
        // the per-accel split ranks the classes whose pools to grow. All
        // starved classes are proposed (most-starved first): chains cross
        // several accelerators in series, so once the top class is fed,
        // the next one is usually the very next climb direction.
        const auto& split = cat == Category::kQueue
                                ? attribution.queue_by_accel
                                : attribution.pe_by_accel;
        for (const std::size_t a : ranked_accels(split)) {
          const int pes = current.pes[a];
          if (pes * 2 > options_.max_pes) continue;
          AutoTuneKnobs k = current;
          k.pes[a] = pes * 2;
          std::snprintf(buf, sizeof buf, "pes[%s] %d -> %d",
                        accel_name(a).c_str(), pes, pes * 2);
          add(k, cat);
        }
        break;
      }
      case Category::kDma: {
        // DMA-dominated chains are serialized on engine occupancy.
        const int dma = current.dma_engines;
        if (dma * 2 > options_.max_dma_engines) break;
        AutoTuneKnobs k = current;
        k.dma_engines = dma * 2;
        std::snprintf(buf, sizeof buf, "dma %d -> %d", dma, dma * 2);
        add(k, cat);
        break;
      }
      case Category::kDispatch:
      case Category::kCore: {
        // Enqueue-retry parking and CPU fallbacks show up as dispatch
        // and uncovered (core) time; both point at full SRAM queues.
        const std::size_t q = current.queue_entries;
        if (q * 2 > options_.max_queue_entries) break;
        AutoTuneKnobs k = current;
        k.queue_entries = q * 2;
        std::snprintf(buf, sizeof buf, "queue %zu -> %zu", q, q * 2);
        add(k, cat);
        break;
      }
      case Category::kNoc:
      case Category::kTranslation:
      case Category::kGlue:
      case Category::kNetwork:
        break;  // Fabric/IOMMU/FSM/rack time has no ensemble-sizing knob.
    }
  }
  // The same knob vector can be proposed by two categories (dispatch and
  // core both widen the queues); probing it twice wastes budget.
  std::vector<Move> unique;
  for (Move& m : moves) {
    bool dup = false;
    for (const Move& u : unique) {
      if (u.knobs.pes == m.knobs.pes &&
          u.knobs.queue_entries == m.knobs.queue_entries &&
          u.knobs.dma_engines == m.knobs.dma_engines) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(std::move(m));
  }
  return unique;
}

AutoTuneResult AutoTuner::tune() {
  if (!session_.prepared()) session_.prepare();

  AutoTuneResult result;
  const core::MachineConfig& mc = session_.config().machine;
  result.initial.pes.fill(mc.pes_per_accel);
  result.initial.queue_entries = mc.accel_queue_entries;
  result.initial.dma_engines = mc.dma.num_engines;
  result.best = result.initial;

  analysis_ = std::make_unique<critpath::Analyzer>();
  double best_mean = probe(result.initial, analysis_.get());
  result.baseline_mean_us = best_mean;
  result.initial_bottleneck = analysis_->total().dominant();
  result.final_bottleneck = result.initial_bottleneck;

  AutoTuneStep baseline;
  baseline.probe = 0;
  baseline.action = "baseline";
  baseline.bottleneck = result.initial_bottleneck;
  baseline.mean_us = best_mean;
  baseline.accepted = true;
  baseline.knobs = result.initial;
  result.steps.push_back(std::move(baseline));

  int probes = 0;
  while (probes < options_.max_probes) {
    const std::vector<Move> moves = propose(analysis_->total(), result.best);
    bool advanced = false;
    for (const Move& move : moves) {
      if (probes >= options_.max_probes) break;
      ++probes;
      auto trial = std::make_unique<critpath::Analyzer>();
      const double mean = probe(move.knobs, trial.get());

      AutoTuneStep step;
      step.probe = probes;
      step.action = move.action;
      step.bottleneck = move.bottleneck;
      step.mean_us = mean;
      step.knobs = move.knobs;
      step.accepted = mean * options_.min_gain < best_mean;
      result.steps.push_back(step);

      if (step.accepted) {
        best_mean = mean;
        result.best = move.knobs;
        analysis_ = std::move(trial);
        result.final_bottleneck = analysis_->total().dominant();
        advanced = true;
        break;  // Re-rank bottlenecks from the new operating point.
      }
    }
    if (!advanced) break;  // No proposed move improved: a local optimum.
  }

  result.tuned_mean_us = best_mean;
  return result;
}

}  // namespace accelflow::workload
