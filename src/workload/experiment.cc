#include "workload/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/orch_baselines.h"
#include "core/trace_templates.h"
#include "critpath/critpath.h"

namespace accelflow::workload {

bool af_check_enabled() {
  const char* v = std::getenv("AF_CHECK");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

double af_fault_rate() {
  const char* v = std::getenv("AF_FAULTS");
  if (v == nullptr || *v == '\0') return 0.0;
  char* end = nullptr;
  const double rate = std::strtod(v, &end);
  if (end == v || rate <= 0.0) return 0.0;
  return std::min(rate, 1.0);
}

bool af_qos_enabled() {
  const char* v = std::getenv("AF_QOS");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

qos::QosPolicy resolve_qos_policy(const ExperimentConfig& config) {
  if (config.qos.enabled() || !af_qos_enabled()) return config.qos;
  return qos::QosPolicy::isolation_defaults(config.specs.size());
}

core::MachineConfig with_qos(core::MachineConfig mc,
                             const qos::QosPolicy& policy) {
  if (policy.enabled()) {
    if (policy.reserved_input_slots > 0) {
      mc.reserved_input_slots = policy.reserved_input_slots;
    }
    if (policy.aging_quantum_us > 0.0) {
      mc.sched_aging_quantum_us = policy.aging_quantum_us;
    }
  }
  return mc;
}

ExperimentResult harvest_result(core::Machine& machine,
                                const core::Orchestrator& orch,
                                const RequestEngine& engine,
                                obs::MetricsRegistry* metrics) {
  ExperimentResult out;
  out.services.resize(engine.num_services());
  double sum_mean = 0, sum_p99 = 0;
  std::size_t measured = 0;
  for (std::size_t s = 0; s < engine.num_services(); ++s) {
    ServiceResult& r = out.services[s];
    const ServiceStats& st = engine.stats(s);
    r.name = engine.service(s).name();
    r.completed = st.completed;
    r.failed = st.failed;
    r.fallbacks = st.fallbacks;
    r.faulted = st.faulted;
    r.latency = st.latency;
    if (st.latency.count() > 0) {
      r.mean_us = sim::to_microseconds(
          static_cast<sim::TimePs>(st.latency.mean()));
      r.p50_us = sim::to_microseconds(st.latency.p50());
      r.p99_us = sim::to_microseconds(st.latency.p99());
      sum_mean += r.mean_us;
      sum_p99 += r.p99_us;
      ++measured;
    }
  }
  if (measured > 0) {
    out.avg_mean_us = sum_mean / static_cast<double>(measured);
    out.avg_p99_us = sum_p99 / static_cast<double>(measured);
  }

  // Machine activity.
  out.elapsed = machine.sim().now();
  out.core_utilization = machine.cores().utilization();
  out.core_busy = machine.cores().stats().busy_time;
  out.dma_utilization = machine.dma().utilization();
  out.dma_busy = machine.dma().stats().busy_time;
  out.manager_busy = machine.manager().total_busy_time();
  out.interrupts = machine.cores().stats().interrupts;
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    const auto& acc = machine.accel(t);
    out.accel_utilization[accel::index_of(t)] = acc.pe_utilization();
    out.accel_busy += acc.stats().pe_busy_time;
    out.accel_busy_by_type[accel::index_of(t)] = acc.stats().pe_busy_time;
    out.dispatcher_busy += acc.dispatcher_busy_time();
    out.overflow_enqueues += acc.stats().overflow_enqueues;
    out.overflow_rejections += acc.stats().overflow_rejections;
    out.accel_invocations += acc.stats().jobs;
    out.tlb_lookups += acc.tlb_stats().lookups;
    out.tlb_misses += acc.tlb_stats().misses();
    out.page_faults += acc.stats().faults;
    out.deadline_misses += acc.stats().deadline_misses;
  }
  if (const auto* eng = orch.engine()) {
    out.engine = eng->stats();
  } else if (const auto* base =
                 dynamic_cast<const core::BaselineOrchestrator*>(&orch)) {
    out.baseline = base->stats();
    out.orchestration_time = base->stats().orchestration_time;
    out.manager_events = base->stats().manager_events;
  }
  if (metrics != nullptr) {
    machine.snapshot_metrics(*metrics);
    if (const auto* eng = orch.engine()) {
      eng->snapshot_metrics(*metrics);
    }
  }
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // QoS policy resolution (DESIGN.md §19): the config's policy, or —
  // under AF_QOS=1 — the tenant-isolation defaults for runs that carry
  // none. The policy's dispatcher knobs thread into the machine config
  // (so accelerators are *built* with the reserved headroom and aging
  // quantum), its quotas/priorities into the engine config below.
  const qos::QosPolicy policy = resolve_qos_policy(config);
  core::Machine machine(with_qos(config.machine, policy));
  if (config.tracer != nullptr) machine.set_tracer(config.tracer);
  core::TraceLibrary lib;
  core::register_templates(lib);
  register_relief_traces(lib);

  // Validation: the caller's checker, or — under AF_CHECK=1 — an internal
  // one that turns any invariant violation into a hard failure. The whole
  // test suite runs with AF_CHECK=1, so every experiment any test drives
  // is continuously audited (TESTING.md).
  check::InvariantChecker* checker = config.checker;
  std::unique_ptr<check::InvariantChecker> env_checker;
  if (checker == nullptr && af_check_enabled()) {
    env_checker = std::make_unique<check::InvariantChecker>();
    checker = env_checker.get();
  }
  if (checker != nullptr) checker->attach(machine, lib);

  auto services = build_services(config.specs, lib);
  std::vector<Service*> service_ptrs;
  for (auto& s : services) service_ptrs.push_back(s.get());

  core::EngineConfig engine_config = config.engine;
  if (policy.enabled()) engine_config.qos = policy;
  auto orch =
      core::make_orchestrator(config.kind, machine, lib, engine_config);

  // Fault injection: the config's plan, or — under AF_FAULTS=<rate> — a
  // uniform plan applied to every run. The injector is run-owned state
  // (it perturbs simulated time), unlike the observer-style tracer/checker.
  // Only engine-family orchestrators carry the resilience policy that can
  // recover injected losses (DESIGN.md §14); attaching an injector to a
  // baseline would strand chains forever — a guaranteed invariant
  // violation, not a measurement — so baselines always run fault-free.
  fault::FaultPlan plan = config.faults;
  if (!plan.enabled()) {
    const double rate = af_fault_rate();
    if (rate > 0) plan = fault::FaultPlan::uniform(rate);
  }
  std::unique_ptr<fault::FaultInjector> injector;
  if (plan.enabled() && orch->engine() != nullptr) {
    injector = std::make_unique<fault::FaultInjector>(machine.sim(), plan);
    machine.set_fault_hooks(injector.get());
  }

  RequestEngine engine(machine, *orch, service_ptrs, config.seed);
  if (!config.step_deadline_budgets.empty()) {
    engine.set_step_deadline_budgets(config.step_deadline_budgets);
  } else {
    engine.set_step_deadline_budget(config.step_deadline_budget);
  }

  // QoS admission controller (DESIGN.md §19): one per run, consulted by
  // every generator before injection and fed every completion's latency.
  std::unique_ptr<qos::AdmissionController> admission;
  if (policy.enabled()) {
    admission =
        std::make_unique<qos::AdmissionController>(machine.sim(), policy);
    engine.set_admission(admission.get());
  }

  const sim::TimePs issue_until = config.warmup + config.measure;
  std::vector<std::unique_ptr<LoadGenerator>> gens;
  for (std::size_t s = 0; s < services.size(); ++s) {
    const double rps = config.per_service_rps.empty()
                           ? config.rps_per_service
                           : config.per_service_rps[s];
    if (rps <= 0) continue;
    gens.push_back(std::make_unique<LoadGenerator>(
        machine.sim(), engine, s, config.load_model, rps, issue_until,
        config.seed ^ (0x10AD + 1315423911ull * (s + 1))));
    if (admission != nullptr) gens.back()->set_admission(admission.get());
  }

  // Power cap (DESIGN.md §19): the governor's epoch events stop at the
  // drain horizon, so the calendar still drains to quiescence.
  std::unique_ptr<qos::PowerGovernor> governor;
  if (config.power.budget_w > 0.0) {
    governor = std::make_unique<qos::PowerGovernor>(machine, config.power);
    governor->start(issue_until + config.drain);
  }

  // Warmup: run, then clear the recorders so only steady state counts.
  machine.sim().run_until(config.warmup);
  engine.reset_stats();
  if (injector != nullptr) injector->reset_stats();
  if (admission != nullptr) admission->reset_stats();
  if (governor != nullptr) governor->reset_stats();
  machine.sim().run_until(issue_until + config.drain);

  ExperimentResult out =
      harvest_result(machine, *orch, engine, config.metrics);
  if (injector != nullptr) {
    out.faults = injector->stats();
    if (config.metrics != nullptr) {
      injector->snapshot_metrics(*config.metrics);
    }
  }
  if (admission != nullptr) {
    out.qos_tenants = admission->tenant_stats();
    out.qos_shed_total = admission->total_shed();
    if (config.metrics != nullptr) {
      admission->snapshot_metrics(*config.metrics);
    }
  }
  if (governor != nullptr) {
    out.power = governor->stats();
    if (config.metrics != nullptr) {
      governor->snapshot_metrics(*config.metrics);
    }
  }
  if (checker != nullptr) {
    checker->final_audit();
    if (env_checker != nullptr && !checker->ok()) {
      std::fprintf(stderr, "AF_CHECK: invariant violations detected\n%s",
                   checker->report().c_str());
      std::abort();
    }
    checker->detach();
  }
  // Under AF_CHECK=1, a traced run also audits the critical-path
  // conservation identity: re-attributing the ring must account for every
  // picosecond of every closed chain (critpath.h). One tracer covers
  // exactly this run, so the audit lives here and not in SweepSession
  // (where the ring accumulates across forked points).
  if (config.tracer != nullptr && af_check_enabled()) {
    critpath::Analyzer audit;
    audit.analyze(*config.tracer);
    if (!audit.violations().empty()) {
      std::fprintf(stderr,
                   "AF_CHECK: critical-path conservation violated "
                   "(%zu chains)\n",
                   audit.violations().size());
      for (const std::string& v : audit.violations()) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      std::abort();
    }
  }
  return out;
}

std::vector<sim::TimePs> unloaded_latency(ExperimentConfig config,
                                          core::OrchKind kind) {
  config.kind = kind;
  config.load_model = LoadGenerator::Model::kPoisson;
  config.per_service_rps.assign(config.specs.size(), 200.0);
  config.warmup = sim::milliseconds(5);
  config.measure = sim::milliseconds(120);
  config.drain = sim::milliseconds(40);
  const ExperimentResult res = run_experiment(config);
  std::vector<sim::TimePs> out;
  out.reserve(res.services.size());
  for (const auto& s : res.services) out.push_back(s.latency.p50());
  return out;
}

double find_max_load(const ExperimentConfig& base,
                     const std::vector<sim::TimePs>& slos, int search_iters,
                     double lo, double hi, ExperimentResult* at_peak) {
  auto meets_slo = [&](double factor, ExperimentResult* keep) {
    ExperimentConfig cfg = base;
    if (cfg.per_service_rps.empty()) {
      cfg.per_service_rps.assign(cfg.specs.size(), cfg.rps_per_service);
    }
    for (double& r : cfg.per_service_rps) r *= factor;
    const ExperimentResult res = run_experiment(cfg);
    bool ok = true;
    for (std::size_t s = 0; s < res.services.size(); ++s) {
      if (cfg.per_service_rps[s] <= 0) continue;  // Not driven.
      const auto& svc = res.services[s];
      // A saturated service stops completing requests at all: that also
      // violates.
      if (svc.completed == 0 || svc.latency.p99() > slos[s]) {
        ok = false;
        break;
      }
    }
    if (ok && keep) *keep = res;
    return ok;
  };

  // The latency-vs-load curve is cliff-like near saturation (queue-full
  // fallbacks feed back into CPU load), so a pure bisection is noisy.
  // Sweep a geometric grid upward until the first violation, then refine
  // with a bounded number of bisection steps.
  if (!meets_slo(lo, at_peak)) return 0.0;
  double best = lo;
  double step = 1.35;
  double probe = lo;
  while (probe * step < hi) {
    probe *= step;
    if (meets_slo(probe, at_peak)) {
      best = probe;
    } else {
      hi = probe;
      break;
    }
  }
  for (int i = 0; i < search_iters; ++i) {
    const double mid = 0.5 * (best + hi);
    if (mid <= best || mid >= hi) break;
    if (meets_slo(mid, at_peak)) {
      best = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace accelflow::workload
