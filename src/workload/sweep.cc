#include "workload/sweep.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <utility>

#include "core/trace_templates.h"
#include "workload/parallel_runner.h"

namespace accelflow::workload {

/** The fork checkpoint: the machine plus every harness-layer component. */
struct SweepSession::Fork {
  core::Machine::Checkpoint machine;
  std::unique_ptr<core::OrchCheckpoint> orch;
  RequestEngine::Checkpoint engine;
  std::vector<LoadGenerator::Checkpoint> gens;
  check::InvariantChecker::Checkpoint checker;
  fault::FaultInjector::Checkpoint injector;  ///< RNG streams + counters.
  qos::AdmissionController::Checkpoint admission;  ///< Buckets + hysteresis.
  qos::PowerGovernor::Checkpoint governor;         ///< DVFS level + anchors.
};

SweepSession::SweepSession(const ExperimentConfig& config)
    : config_(config),
      qos_policy_(resolve_qos_policy(config)),
      machine_(with_qos(config.machine, qos_policy_)) {
  if (config_.tracer != nullptr) machine_.set_tracer(config_.tracer);
  core::register_templates(lib_);
  register_relief_traces(lib_);

  checker_ = config_.checker;
  if (checker_ == nullptr && af_check_enabled()) {
    env_checker_ = std::make_unique<check::InvariantChecker>();
    checker_ = env_checker_.get();
  }
  if (checker_ != nullptr) checker_->attach(machine_, lib_);

  services_ = build_services(config_.specs, lib_);
  std::vector<Service*> service_ptrs;
  for (auto& s : services_) service_ptrs.push_back(s.get());

  core::EngineConfig engine_config = config_.engine;
  if (qos_policy_.enabled()) engine_config.qos = qos_policy_;
  orch_ = core::make_orchestrator(config_.kind, machine_, lib_,
                                  engine_config);

  // Fault injection: config plan or the AF_FAULTS env knob, exactly as in
  // run_experiment() — engine-family orchestrators only, since baselines
  // carry no recovery policy (DESIGN.md §14). The injector's RNG streams
  // perturb simulated time, so they are checkpointed with the fork
  // (unlike the tracer/checker).
  fault::FaultPlan plan = config_.faults;
  if (!plan.enabled()) {
    const double rate = af_fault_rate();
    if (rate > 0) plan = fault::FaultPlan::uniform(rate);
  }
  if (plan.enabled() && orch_->engine() != nullptr) {
    injector_ = std::make_unique<fault::FaultInjector>(machine_.sim(), plan);
    machine_.set_fault_hooks(injector_.get());
  }

  engine_ = std::make_unique<RequestEngine>(machine_, *orch_, service_ptrs,
                                            config_.seed);
  if (!config_.step_deadline_budgets.empty()) {
    engine_->set_step_deadline_budgets(config_.step_deadline_budgets);
  } else {
    engine_->set_step_deadline_budget(config_.step_deadline_budget);
  }

  // QoS attachments (DESIGN.md §19), mirroring run_experiment(). The
  // governor's warmup epochs stop at the warmup horizon so the calendar
  // still drains to quiescence before the fork; run_point() re-arms it.
  if (qos_policy_.enabled()) {
    admission_ = std::make_unique<qos::AdmissionController>(machine_.sim(),
                                                            qos_policy_);
    engine_->set_admission(admission_.get());
  }
  if (config_.power.budget_w > 0.0) {
    governor_ = std::make_unique<qos::PowerGovernor>(machine_,
                                                     config_.power);
    governor_->start(config_.warmup);
  }

  // Warmup generators stop issuing at `warmup`, so the machine can drain
  // to quiescence before the fork point; run_point() revives them per
  // point via resume(). Seeding matches run_experiment() exactly, so the
  // warmup traffic is the same request stream either way.
  for (std::size_t s = 0; s < services_.size(); ++s) {
    const double rps = config_.per_service_rps.empty()
                           ? config_.rps_per_service
                           : config_.per_service_rps[s];
    if (rps <= 0) continue;
    gens_.push_back(std::make_unique<LoadGenerator>(
        machine_.sim(), *engine_, s, config_.load_model, rps,
        config_.warmup,
        config_.seed ^ (0x10AD + 1315423911ull * (s + 1))));
    if (admission_ != nullptr) gens_.back()->set_admission(admission_.get());
    gen_rates_.push_back(rps);
  }
}

SweepSession::~SweepSession() {
  if (checker_ != nullptr) checker_->detach();
}

void SweepSession::prepare() {
  assert(fork_ == nullptr && "prepare() already called");
  machine_.sim().run_until(config_.warmup);
  // Drain every in-flight request: an empty calendar is what makes the
  // checkpoint cheap (no pending callbacks to clone) and exact (no
  // component holds a raw pointer into a half-finished flow).
  machine_.sim().run();
  t_fork_ = machine_.sim().now();

  fork_ = std::make_unique<Fork>();
  machine_.checkpoint(fork_->machine);
  fork_->orch = orch_->save_checkpoint();
  fork_->engine = engine_->checkpoint();
  fork_->gens.reserve(gens_.size());
  for (const auto& g : gens_) fork_->gens.push_back(g->checkpoint());
  if (checker_ != nullptr) fork_->checker = checker_->checkpoint();
  if (injector_ != nullptr) fork_->injector = injector_->checkpoint();
  if (admission_ != nullptr) fork_->admission = admission_->checkpoint();
  if (governor_ != nullptr) fork_->governor = governor_->checkpoint();
}

ExperimentResult SweepSession::run_point(const SweepPoint& point) {
  assert(fork_ != nullptr && "call prepare() before run_point()");
  machine_.restore(fork_->machine);
  orch_->restore_checkpoint(*fork_->orch);
  engine_->restore(fork_->engine);
  for (std::size_t i = 0; i < gens_.size(); ++i) {
    gens_[i]->restore(fork_->gens[i]);
  }
  if (checker_ != nullptr) checker_->restore(fork_->checker);
  if (injector_ != nullptr) injector_->restore(fork_->injector);
  if (admission_ != nullptr) admission_->restore(fork_->admission);
  if (governor_ != nullptr) governor_->restore(fork_->governor);

  if (point.mutate) point.mutate(machine_);

  // Steady state only, as in run_experiment()'s post-warmup reset.
  engine_->reset_stats();
  if (injector_ != nullptr) injector_->reset_stats();
  if (admission_ != nullptr) admission_->reset_stats();
  if (governor_ != nullptr) governor_->reset_stats();

  const sim::TimePs issue_until = t_fork_ + config_.measure;
  for (std::size_t i = 0; i < gens_.size(); ++i) {
    gens_[i]->resume(gen_rates_[i] * point.rate_factor, issue_until);
  }
  if (governor_ != nullptr) governor_->resume(issue_until + config_.drain);
  machine_.sim().run_until(issue_until + config_.drain);

  ExperimentResult out =
      harvest_result(machine_, *orch_, *engine_, config_.metrics);
  if (injector_ != nullptr) {
    out.faults = injector_->stats();
    if (config_.metrics != nullptr) {
      injector_->snapshot_metrics(*config_.metrics);
    }
  }
  if (admission_ != nullptr) {
    out.qos_tenants = admission_->tenant_stats();
    out.qos_shed_total = admission_->total_shed();
    if (config_.metrics != nullptr) {
      admission_->snapshot_metrics(*config_.metrics);
    }
  }
  if (governor_ != nullptr) {
    out.power = governor_->stats();
    if (config_.metrics != nullptr) {
      governor_->snapshot_metrics(*config_.metrics);
    }
  }
  if (checker_ != nullptr) {
    checker_->final_audit();
    if (env_checker_ != nullptr && !checker_->ok()) {
      std::fprintf(stderr, "AF_CHECK: invariant violations detected\n%s",
                   checker_->report().c_str());
      std::abort();
    }
  }
  return out;
}

double find_max_load_forked(SweepSession& session,
                            const std::vector<sim::TimePs>& slos,
                            int search_iters, double lo, double hi,
                            ExperimentResult* at_peak) {
  if (!session.prepared()) session.prepare();
  // Which services are driven (rate > 0), as in find_max_load().
  const ExperimentConfig& cfg = session.config();
  std::vector<double> rps = cfg.per_service_rps;
  if (rps.empty()) rps.assign(cfg.specs.size(), cfg.rps_per_service);

  auto meets_slo = [&](double factor, ExperimentResult* keep) {
    const ExperimentResult res = session.run_point({factor, {}});
    bool ok = true;
    for (std::size_t s = 0; s < res.services.size(); ++s) {
      if (rps[s] <= 0) continue;  // Not driven.
      const auto& svc = res.services[s];
      if (svc.completed == 0 || svc.latency.p99() > slos[s]) {
        ok = false;
        break;
      }
    }
    if (ok && keep) *keep = res;
    return ok;
  };

  // Same search policy as find_max_load(): geometric grid up to the first
  // violation, then a bounded bisection refinement.
  if (!meets_slo(lo, at_peak)) return 0.0;
  double best = lo;
  double step = 1.35;
  double probe = lo;
  while (probe * step < hi) {
    probe *= step;
    if (meets_slo(probe, at_peak)) {
      best = probe;
    } else {
      hi = probe;
      break;
    }
  }
  for (int i = 0; i < search_iters; ++i) {
    const double mid = 0.5 * (best + hi);
    if (mid <= best || mid >= hi) break;
    if (meets_slo(mid, at_peak)) {
      best = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

std::vector<std::vector<ExperimentResult>> run_forked_sweeps(
    const std::vector<ExperimentConfig>& groups,
    const std::vector<std::vector<SweepPoint>>& points) {
  assert(groups.size() == points.size());
  std::vector<std::size_t> indices(groups.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  return ParallelRunner().map(indices, [&](std::size_t g) {
    SweepSession session(groups[g]);
    session.prepare();
    std::vector<ExperimentResult> out;
    out.reserve(points[g].size());
    for (const SweepPoint& p : points[g]) out.push_back(session.run_point(p));
    return out;
  });
}

}  // namespace accelflow::workload
