#ifndef ACCELFLOW_WORKLOAD_AUTOTUNE_H_
#define ACCELFLOW_WORKLOAD_AUTOTUNE_H_

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "accel/types.h"
#include "critpath/critpath.h"
#include "workload/sweep.h"

/**
 * @file
 * Bottleneck-driven configuration auto-tuning (DESIGN.md §16).
 *
 * The tuner closes the loop around the critical-path profiler: run a
 * traced probe, ask critpath::Analyzer where the latency went, move the
 * one knob named by the dominant bottleneck (per-class PE counts for
 * queue/PE-service time, A-DMA engines for DMA time, SRAM queue depth
 * for dispatch/core time spent in enqueue-retry parking), and keep the
 * move only if mean latency actually improved — classic greedy hill
 * climbing, except the search direction comes from measured attribution
 * instead of coordinate cycling.
 *
 * Every probe forks from one shared SweepSession warmup checkpoint
 * (DESIGN.md §13), so an N-step tuning run pays one warmup plus N
 * measurement windows, and each probe is bit-deterministic given its
 * knob settings regardless of the moves tried before it.
 */

namespace accelflow::workload {

/** The knob vector the tuner searches over. */
struct AutoTuneKnobs {
  /** PEs per accelerator class (diverges per class, unlike the uniform
   *  MachineConfig::pes_per_accel baseline). */
  std::array<int, accel::kNumAccelTypes> pes{};
  /** Input/output SRAM queue entries, uniform across accelerators. */
  std::size_t queue_entries = 0;
  /** A-DMA engine-pool size. */
  int dma_engines = 0;

  /** Applies the knobs to a quiescent machine (a SweepPoint mutation). */
  void apply(core::Machine& machine) const;

  /** Human-readable "pes=[...] queue=N dma=M" form (logs, JSON). */
  std::string describe() const;
};

/** One probe of the tuning trajectory. */
struct AutoTuneStep {
  int probe = 0;                  ///< Probe number (0 = baseline).
  std::string action;             ///< The move tried ("pes[TCP] 2 -> 4").
  critpath::Category bottleneck = critpath::Category::kCore;
  ///< Dominant category that motivated the move.
  double mean_us = 0;             ///< Probe's mean end-to-end latency.
  bool accepted = false;          ///< Whether the move was kept.
  AutoTuneKnobs knobs;            ///< Knob vector probed.
};

/** Outcome of a tuning run. */
struct AutoTuneResult {
  double baseline_mean_us = 0;    ///< Mean latency at the initial knobs.
  double tuned_mean_us = 0;       ///< Mean latency at the best knobs.
  /** Recovery factor baseline/tuned (>= 1; the bench gates on this). */
  double improvement() const {
    return tuned_mean_us > 0 ? baseline_mean_us / tuned_mean_us : 1.0;
  }
  AutoTuneKnobs initial;          ///< Knobs the session started from.
  AutoTuneKnobs best;             ///< Best knob vector found.
  critpath::Category initial_bottleneck = critpath::Category::kCore;
  critpath::Category final_bottleneck = critpath::Category::kCore;
  std::vector<AutoTuneStep> steps;  ///< Full trajectory, baseline first.
};

/**
 * Greedy bottleneck-driven hill climber over a SweepSession's machine
 * knobs. The session's ExperimentConfig must carry a tracer
 * (ExperimentConfig::tracer) — the tuner clears it before every probe so
 * each attribution covers exactly one measurement window.
 */
class AutoTuner {
 public:
  /** Search policy. */
  struct Options {
    /** Probe budget after the baseline probe (each accepted or rejected
     *  move costs one forked measurement window). */
    int max_probes = 8;
    /** A move is kept when it shrinks mean latency by at least this
     *  factor (1.01 = 1%); smaller gains read as noise and end the
     *  climb along that coordinate. */
    double min_gain = 1.01;
    /** Knob ceilings, so a saturated machine cannot drive the doubling
     *  moves unboundedly. */
    int max_pes = 32;
    std::size_t max_queue_entries = 512;
    int max_dma_engines = 40;
  };

  /** Binds the tuner to a prepared (or preparable) session. */
  AutoTuner(SweepSession& session, Options options);

  /**
   * Runs the climb: baseline probe, then up to max_probes bottleneck-
   * directed moves, keeping improvements. prepare()s the session if the
   * caller has not.
   */
  AutoTuneResult tune();

  /** Per-service attribution of the final (best-knob) probe. */
  const critpath::Analyzer& final_analysis() const { return *analysis_; }

 private:
  /** One candidate move: a knob vector and its provenance. */
  struct Move {
    AutoTuneKnobs knobs;
    std::string action;
    critpath::Category bottleneck = critpath::Category::kCore;
  };

  /** Runs one forked, traced probe at `knobs`; fills `analysis`. */
  double probe(const AutoTuneKnobs& knobs, critpath::Analyzer* analysis);

  /**
   * Proposes moves for `attribution`, most-dominant category first.
   * Categories with no knob (NoC, translation, glue) and knobs at their
   * ceiling propose nothing.
   */
  std::vector<Move> propose(const critpath::ServiceAttribution& attribution,
                            const AutoTuneKnobs& current) const;

  SweepSession& session_;
  Options options_;
  obs::Tracer* tracer_;  ///< The session config's tracer (required).
  std::unique_ptr<critpath::Analyzer> analysis_;  ///< Best probe's analysis.
};

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_AUTOTUNE_H_
