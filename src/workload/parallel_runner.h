#ifndef ACCELFLOW_WORKLOAD_PARALLEL_RUNNER_H_
#define ACCELFLOW_WORKLOAD_PARALLEL_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "workload/experiment.h"

/**
 * @file
 * Fans independent experiment points across a thread pool.
 *
 * The simulator is single-threaded by design (that is what makes runs
 * bit-deterministic), but a sweep — architectures x seeds x load points —
 * is embarrassingly parallel: every ExperimentConfig builds its own
 * Machine, Simulator and RNGs and shares no mutable state with any other
 * point. ParallelRunner exploits exactly that: each worker thread runs
 * whole simulations serially, results are collected in submission order,
 * and a point's result is byte-identical to what a serial loop produces.
 */

namespace accelflow::workload {

/**
 * Runs independent experiment points concurrently.
 *
 * Determinism contract: run(configs)[i] is computed by a single-threaded
 * run_experiment(configs[i]) — identical, stat for stat, to the value a
 * plain `for` loop over the same configs yields, regardless of the thread
 * count or OS scheduling. Only wall-clock time changes.
 */
class ParallelRunner {
 public:
  /**
   * @param threads worker count; 0 picks default_threads().
   */
  explicit ParallelRunner(unsigned threads = 0);

  /**
   * Worker count used when none is given: the AF_BENCH_THREADS environment
   * variable if set, otherwise the hardware concurrency (min 1).
   * AF_BENCH_THREADS=1 forces serial execution for A/B determinism checks.
   */
  static unsigned default_threads();

  unsigned threads() const { return threads_; }

  /** Runs every config (in any order) and returns results in input order. */
  std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& configs) const;

  /**
   * Generic fan-out: applies `fn` to every item on the pool, returning
   * results in input order. `fn` must be safe to call concurrently on
   * distinct items (true for anything that, like run_experiment, only
   * touches state it creates). Exceptions from `fn` are rethrown on the
   * caller's thread (first one wins).
   */
  template <typename Item, typename Fn>
  auto map(const std::vector<Item>& items, Fn fn) const
      -> std::vector<decltype(fn(items.front()))> {
    using Result = decltype(fn(items.front()));
    std::vector<Result> results(items.size());
    const unsigned workers = worker_count(items.size());
    if (workers <= 1) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        results[i] = fn(items[i]);
      }
      return results;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= items.size() || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          results[i] = fn(items[i]);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return results;
  }

 private:
  unsigned worker_count(std::size_t items) const;

  unsigned threads_;
};

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_PARALLEL_RUNNER_H_
