#include "workload/suites.h"

#include "core/trace_builder.h"

namespace accelflow::workload {

namespace {

using accel::AccelType;

StageSpec cpu_stage(double weight) {
  StageSpec s;
  s.kind = StageSpec::Kind::kCpu;
  s.cpu_weight = weight;
  return s;
}

ChainGroup grp(std::string trace, int count = 1, FlagProbs flags = {}) {
  ChainGroup g;
  g.trace = std::move(trace);
  g.count = count;
  g.flags = flags;
  return g;
}

StageSpec chain_stage(std::vector<ChainGroup> groups) {
  StageSpec s;
  s.kind = StageSpec::Kind::kChains;
  s.groups = std::move(groups);
  return s;
}

FlagProbs compressed_flags(double p = 0.90) {
  FlagProbs f;
  f.compressed = p;
  return f;
}

}  // namespace

std::vector<ServiceSpec> social_network_specs() {
  std::vector<ServiceSpec> specs;

  // Per-service Figure-1 fractions. Chosen so the suite average reproduces
  // the paper's fleet averages (AppLogic 20.7%, TCP 25.6%, (De)Encr 14.6%,
  // RPC 3.2%, (De)Ser 22.4%, (De)Cmp 9.5%, LdB 3.9%); services whose
  // Table IV path has no (de)compression get a zero Cmp share.

  {  // ComposePost: T1-CPU-4x(T9-T10)-CPU-3x(T9-T10)-CPU-T2, 87 accels.
    ServiceSpec s;
    s.name = "CPost";
    s.total_cpu_time = sim::microseconds(660);
    s.fractions = {0.23, 0.24, 0.13, 0.045, 0.20, 0.14, 0.015};
    s.rpc_callees = {"UniqId", "CUrls", "StoreP"};
    s.stages = {chain_stage({grp("T1", 1, compressed_flags())}),
                cpu_stage(0.3),
                chain_stage({grp("T9c", 4, compressed_flags())}),
                cpu_stage(0.4),
                chain_stage({grp("T9c", 3, compressed_flags())}),
                cpu_stage(0.3),
                chain_stage({grp("T2")})};
    specs.push_back(std::move(s));
  }
  {  // ReadHomeTimeline: T1-CPU-T4-T5-CPU-T9-T10-CPU-T3, 28 accels.
    ServiceSpec s;
    s.name = "ReadH";
    s.total_cpu_time = sim::microseconds(210);
    s.rpc_callees = {"StoreP"};
    s.fractions = {0.20, 0.25, 0.13, 0.030, 0.20, 0.16, 0.030};
    FlagProbs read_flags;
    read_flags.hit = 0.90;
    read_flags.compressed = 0.10;
    s.stages = {chain_stage({grp("T1")}),
                cpu_stage(0.4),
                chain_stage({grp("T4", 1, read_flags)}),
                cpu_stage(0.3),
                chain_stage({grp("T9c", 1, compressed_flags())}),
                cpu_stage(0.3),
                chain_stage({grp("T3")})};
    specs.push_back(std::move(s));
  }
  {  // StorePost: T1-CPU-T8-T7-CPU-T2, 18 accels.
    ServiceSpec s;
    s.name = "StoreP";
    s.total_cpu_time = sim::microseconds(166);
    s.fractions = {0.18, 0.24, 0.14, 0.025, 0.21, 0.17, 0.035};
    s.stages = {chain_stage({grp("T1", 1, compressed_flags())}),
                cpu_stage(0.5),
                chain_stage({grp("T8c")}),
                cpu_stage(0.5),
                chain_stage({grp("T2")})};
    specs.push_back(std::move(s));
  }
  {  // Follow: T1-CPU-3x(T8-T7)-CPU-T2, 30 accels.
    ServiceSpec s;
    s.name = "Follow";
    s.total_cpu_time = sim::microseconds(245);
    s.fractions = {0.25, 0.28, 0.16, 0.025, 0.24, 0.0, 0.045};
    s.stages = {chain_stage({grp("T1")}),
                cpu_stage(0.5),
                chain_stage({grp("T8", 3)}),
                cpu_stage(0.5),
                chain_stage({grp("T2")})};
    specs.push_back(std::move(s));
  }
  {  // Login: T1-CPU-T4-T5-T6-T7-CPU-T2, 29 accels. The cache misses and
     // the value comes (compressed) from the DB, with a cache write-back.
    ServiceSpec s;
    s.name = "Login";
    s.total_cpu_time = sim::microseconds(262);
    s.fractions = {0.12, 0.28, 0.17, 0.030, 0.23, 0.15, 0.020};
    FlagProbs login_flags;
    login_flags.hit = 0.10;  // Sessions are rarely cached.
    login_flags.found = 0.97;
    login_flags.compressed = 0.90;
    login_flags.c_compressed = 0.05;
    s.stages = {chain_stage({grp("T1")}),
                cpu_stage(0.5),
                chain_stage({grp("T4", 1, login_flags)}),
                cpu_stage(0.5),
                chain_stage({grp("T2")})};
    specs.push_back(std::move(s));
  }
  {  // ComposeUrls: T1-CPU-T8-T7-CPU-T3, 19 accels.
    ServiceSpec s;
    s.name = "CUrls";
    s.total_cpu_time = sim::microseconds(175);
    s.fractions = {0.21, 0.24, 0.14, 0.025, 0.22, 0.14, 0.025};
    s.stages = {chain_stage({grp("T1", 1, compressed_flags())}),
                cpu_stage(0.5),
                chain_stage({grp("T8c")}),
                cpu_stage(0.5),
                chain_stage({grp("T3")})};
    specs.push_back(std::move(s));
  }
  {  // UniqueId: T1-CPU-T2, 9 accels. Short: tax dominates.
    ServiceSpec s;
    s.name = "UniqId";
    s.total_cpu_time = sim::microseconds(52);
    s.fractions = {0.15, 0.30, 0.17, 0.040, 0.27, 0.0, 0.070};
    s.stages = {chain_stage({grp("T1")}), cpu_stage(1.0),
                chain_stage({grp("T2")})};
    specs.push_back(std::move(s));
  }
  {  // RegisterUser: T1-CPU-T8-T7-CPU-T9-T10-CPU-T2, 25 accels.
    ServiceSpec s;
    s.name = "RegUsr";
    s.total_cpu_time = sim::microseconds(218);
    s.rpc_callees = {"UniqId"};
    s.fractions = {0.316, 0.218, 0.128, 0.036, 0.222, 0.0, 0.072};
    s.stages = {chain_stage({grp("T1")}),
                cpu_stage(0.4),
                chain_stage({grp("T8")}),
                cpu_stage(0.3),
                chain_stage({grp("T9")}),
                cpu_stage(0.3),
                chain_stage({grp("T2")})};
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<ServiceSpec> hotel_reservation_specs() {
  std::vector<ServiceSpec> specs;
  auto add = [&](const char* name, double total_us,
                 std::vector<StageSpec> stages) {
    ServiceSpec s;
    s.name = name;
    s.total_cpu_time = sim::microseconds(total_us);
    s.stages = std::move(stages);
    specs.push_back(std::move(s));
  };
  FlagProbs geo;
  geo.hit = 0.95;
  add("Search", 180,
      {chain_stage({grp("T1")}), cpu_stage(0.5),
       chain_stage({grp("T9", 2)}), cpu_stage(0.5),
       chain_stage({grp("T2")})});
  add("Reserve", 150,
      {chain_stage({grp("T1")}), cpu_stage(0.4),
       chain_stage({grp("T8c")}), cpu_stage(0.6),
       chain_stage({grp("T2")})});
  add("Recommend", 120,
      {chain_stage({grp("T1")}), cpu_stage(0.6),
       chain_stage({grp("T4", 1, geo)}), cpu_stage(0.4),
       chain_stage({grp("T3")})});
  add("Geo", 60,
      {chain_stage({grp("T1")}), cpu_stage(1.0),
       chain_stage({grp("T2")})});
  add("Rate", 90,
      {chain_stage({grp("T1")}), cpu_stage(0.5),
       chain_stage({grp("T4", 1, geo)}), cpu_stage(0.5),
       chain_stage({grp("T2")})});
  add("UserProf", 75,
      {chain_stage({grp("T1")}), cpu_stage(0.7),
       chain_stage({grp("T8")}), cpu_stage(0.3),
       chain_stage({grp("T2")})});
  return specs;
}

std::vector<ServiceSpec> media_services_specs() {
  std::vector<ServiceSpec> specs;
  auto add = [&](const char* name, double total_us,
                 std::vector<StageSpec> stages) {
    ServiceSpec s;
    s.name = name;
    s.total_cpu_time = sim::microseconds(total_us);
    s.payload_median_bytes = 4096;  // Media payloads are larger.
    s.stages = std::move(stages);
    specs.push_back(std::move(s));
  };
  FlagProbs media;
  media.compressed = 0.85;
  media.hit = 0.75;
  add("ComposeReview", 260,
      {chain_stage({grp("T1", 1, media)}), cpu_stage(0.4),
       chain_stage({grp("T9c", 5, media)}), cpu_stage(0.3),
       chain_stage({grp("T8c")}), cpu_stage(0.3),
       chain_stage({grp("T3")})});
  add("ReadPage", 200,
      {chain_stage({grp("T1", 1, media)}), cpu_stage(0.4),
       chain_stage({grp("T4", 4, media)}), cpu_stage(0.6),
       chain_stage({grp("T3")})});
  add("Stream", 320,
      {chain_stage({grp("T1", 1, media)}), cpu_stage(0.3),
       chain_stage({grp("T11c", 3, media)}), cpu_stage(0.7),
       chain_stage({grp("T3")})});
  add("UserReview", 140,
      {chain_stage({grp("T1", 1, media)}), cpu_stage(0.5),
       chain_stage({grp("T4", 1, media)}), cpu_stage(0.5),
       chain_stage({grp("T2")})});
  add("CastInfo", 110,
      {chain_stage({grp("T1", 1, media)}), cpu_stage(0.6),
       chain_stage({grp("T4", 1, media)}), cpu_stage(0.4),
       chain_stage({grp("T3")})});
  add("Plot", 95,
      {chain_stage({grp("T1", 1, media)}), cpu_stage(0.7),
       chain_stage({grp("T4", 1, media)}), cpu_stage(0.3),
       chain_stage({grp("T2")})});
  return specs;
}

std::vector<ServiceSpec> train_ticket_specs() {
  std::vector<ServiceSpec> specs;
  auto add = [&](const char* name, double total_us,
                 std::vector<StageSpec> stages) {
    ServiceSpec s;
    s.name = name;
    s.total_cpu_time = sim::microseconds(total_us);
    s.stages = std::move(stages);
    specs.push_back(std::move(s));
  };
  // TrainTicket has the lowest conditional share (53.8%): many plain
  // request/response services.
  add("QueryTicket", 170,
      {chain_stage({grp("T1")}), cpu_stage(0.6),
       chain_stage({grp("T9", 2)}), cpu_stage(0.4),
       chain_stage({grp("T2")})});
  add("Order", 210,
      {chain_stage({grp("T1")}), cpu_stage(0.4),
       chain_stage({grp("T8")}), cpu_stage(0.6),
       chain_stage({grp("T2")})});
  add("Pay", 160,
      {chain_stage({grp("T1")}), cpu_stage(0.5),
       chain_stage({grp("T11")}), cpu_stage(0.5),
       chain_stage({grp("T2")})});
  add("Notify", 55,
      {chain_stage({grp("T1")}), cpu_stage(1.0),
       chain_stage({grp("T2")})});
  add("Route", 90,
      {chain_stage({grp("T1")}), cpu_stage(1.0),
       chain_stage({grp("T2")})});
  add("Seat", 120,
      {chain_stage({grp("T1")}), cpu_stage(0.5),
       chain_stage({grp("T4")}), cpu_stage(0.5),
       chain_stage({grp("T2")})});
  return specs;
}

std::vector<ServiceSpec> usuite_specs() {
  // uSuite's benchmarks are mid-tier services that fan a query out to leaf
  // shards and merge the responses: heavy on nested RPC and
  // (de)serialization, light on storage.
  std::vector<ServiceSpec> specs;
  auto add = [&](const char* name, double total_us, int fanout,
                 std::vector<StageSpec> extra_head = {}) {
    ServiceSpec s;
    s.name = name;
    s.total_cpu_time = sim::microseconds(total_us);
    s.fractions = {0.22, 0.26, 0.13, 0.05, 0.25, 0.0, 0.09};
    s.stages = {chain_stage({grp("T1")}), cpu_stage(0.5)};
    for (auto& st : extra_head) s.stages.push_back(std::move(st));
    s.stages.push_back(chain_stage({grp("T9", fanout)}));
    s.stages.push_back(cpu_stage(0.5));
    s.stages.push_back(chain_stage({grp("T2")}));
    specs.push_back(std::move(s));
  };
  add("HDSearch", 260, 4);
  add("Router", 120, 2);
  add("SetAlgebra", 180, 3);
  add("Recommend", 150, 2,
      {chain_stage({grp("T4")}), cpu_stage(0.3)});
  return specs;
}

std::vector<ServiceSpec> serverless_specs() {
  std::vector<ServiceSpec> specs;
  auto add = [&](const char* name, double total_us, double app_frac,
                 std::vector<StageSpec> stages,
                 std::uint64_t payload = 8192) {
    ServiceSpec s;
    s.name = name;
    s.total_cpu_time = sim::microseconds(total_us);
    // Serverless functions carry more application logic; the tax split
    // within the remainder follows the fleet-average proportions.
    const double tax = 1.0 - app_frac;
    const double norm = 1.0 - kPaperAverageFractions[0];
    s.fractions = {app_frac,
                   kPaperAverageFractions[1] / norm * tax,
                   kPaperAverageFractions[2] / norm * tax,
                   kPaperAverageFractions[3] / norm * tax,
                   kPaperAverageFractions[4] / norm * tax,
                   kPaperAverageFractions[5] / norm * tax,
                   kPaperAverageFractions[6] / norm * tax};
    s.payload_median_bytes = payload;
    s.stages = std::move(stages);
    specs.push_back(std::move(s));
  };
  FlagProbs blob;
  blob.compressed = 0.9;
  // Short functions: tax dominates; AccelFlow helps most (Fig. 16).
  add("ImgRot", 140, 0.45,
      {chain_stage({grp("T1", 1, blob)}), cpu_stage(1.0),
       chain_stage({grp("T3")})},
      32768);
  add("JsonParse", 90, 0.35,
      {chain_stage({grp("T1", 1, blob)}), cpu_stage(1.0),
       chain_stage({grp("T2")})});
  add("MLServe", 480, 0.60,
      {chain_stage({grp("T1")}), cpu_stage(0.7),
       chain_stage({grp("T11")}), cpu_stage(0.3),
       chain_stage({grp("T2")})});
  add("DocConv", 350, 0.55,
      {chain_stage({grp("T1", 1, blob)}), cpu_stage(1.0),
       chain_stage({grp("T3")})},
      16384);
  add("VideoShort", 900, 0.70,
      {chain_stage({grp("T1", 1, blob)}), cpu_stage(0.5),
       chain_stage({grp("T11c", 1, blob)}), cpu_stage(0.5),
       chain_stage({grp("T3")})},
      65536);
  add("Thumbnail", 220, 0.50,
      {chain_stage({grp("T1", 1, blob)}), cpu_stage(1.0),
       chain_stage({grp("T3")})},
      32768);
  return specs;
}

void register_relief_traces(core::TraceLibrary& lib) {
  using accel::AccelType;
  auto reg = [&lib](const char* name,
                    std::initializer_list<AccelType> chain) {
    if (lib.contains(name)) return;
    core::TraceBuilder b(lib);
    b.seq(chain);
    b.end_notify(name);
  };
  // Seven stand-in coarse accelerators: Dcmp, Dser, Ser, Cmp, Encr, Decr,
  // RPC (the image kernels and RNN cells of the RELIEF artifact).
  reg("RLF_GrayScale", {AccelType::kDcmp, AccelType::kDser, AccelType::kSer,
                        AccelType::kCmp});
  reg("RLF_Harris", {AccelType::kDcmp, AccelType::kDser, AccelType::kEncr,
                     AccelType::kDecr, AccelType::kSer});
  reg("RLF_EdgeDetect",
      {AccelType::kDcmp, AccelType::kEncr, AccelType::kDecr,
       AccelType::kCmp});
  reg("RLF_Disparity",
      {AccelType::kDcmp, AccelType::kDser, AccelType::kEncr,
       AccelType::kRpc, AccelType::kDecr, AccelType::kSer, AccelType::kCmp});
  reg("RLF_LSTM",
      {AccelType::kDser, AccelType::kRpc, AccelType::kEncr, AccelType::kSer});
  reg("RLF_GRU",
      {AccelType::kDser, AccelType::kRpc, AccelType::kDecr, AccelType::kSer});
  reg("RLF_Seq2Seq",
      {AccelType::kDser, AccelType::kRpc, AccelType::kEncr,
       AccelType::kDecr, AccelType::kRpc, AccelType::kSer});
}

std::vector<ServiceSpec> relief_suite_specs() {
  // Coarse-grained accelerator applications standing in for the RELIEF
  // gem5 artifact: fixed linear chains (registered as custom traces by
  // register_relief_traces), each operation hundreds of microseconds, no
  // in-flight control flow — the regime RELIEF was designed for.
  std::vector<ServiceSpec> specs;
  auto add = [&](const char* name, double total_us, const char* trace,
                 double app_frac) {
    ServiceSpec s;
    s.name = name;
    s.total_cpu_time = sim::microseconds(total_us);
    // One chain; tax fractions spread across the categories the chain
    // uses (computed against equal weights here; the Service constructor
    // divides by actual op counts).
    const double tax = (1.0 - app_frac) / 6.0;
    s.fractions = {app_frac, tax, tax, tax, tax, tax, tax};
    s.payload_median_bytes = 64 * 1024;
    s.payload_cv = 0.4;
    s.stages = {cpu_stage(0.5), chain_stage({grp(trace)}), cpu_stage(0.5)};
    specs.push_back(std::move(s));
  };
  add("GrayScale", 800, "RLF_GrayScale", 0.10);
  add("Harris", 1600, "RLF_Harris", 0.12);
  add("EdgeDetect", 1200, "RLF_EdgeDetect", 0.10);
  add("Disparity", 2400, "RLF_Disparity", 0.15);
  add("LSTM", 2000, "RLF_LSTM", 0.20);
  add("GRU", 1500, "RLF_GRU", 0.20);
  add("Seq2Seq", 3000, "RLF_Seq2Seq", 0.25);
  return specs;
}

std::vector<std::unique_ptr<Service>> build_services(
    const std::vector<ServiceSpec>& specs, const core::TraceLibrary& lib) {
  std::vector<std::unique_ptr<Service>> services;
  services.reserve(specs.size());
  for (const ServiceSpec& spec : specs) {
    services.push_back(std::make_unique<Service>(spec, lib));
  }
  return services;
}

}  // namespace accelflow::workload
