#ifndef ACCELFLOW_WORKLOAD_SUITES_H_
#define ACCELFLOW_WORKLOAD_SUITES_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/trace_library.h"
#include "workload/service.h"

/**
 * @file
 * The benchmark suites of Section VI:
 *  - the eight DeathStarBench SocialNetwork services (CPost, ReadH, StoreP,
 *    Follow, Login, CUrls, UniqId, RegUsr) with the Table IV paths,
 *  - HotelReservation and MediaServices (for the load sweeps of Fig. 12),
 *  - TrainTicket-style services (Section III's conditional statistics),
 *  - FunctionBench serverless functions (Fig. 16),
 *  - a substitute for the RELIEF gem5 artifact's coarse-grained image
 *    processing and RNN applications (Fig. 15).
 */

namespace accelflow::workload {

/** Builds the specs of the eight SocialNetwork services. */
std::vector<ServiceSpec> social_network_specs();

/** HotelReservation services (6 services). */
std::vector<ServiceSpec> hotel_reservation_specs();

/** MediaServices services (6 services). */
std::vector<ServiceSpec> media_services_specs();

/** TrainTicket-style services (6 services). */
std::vector<ServiceSpec> train_ticket_specs();

/** uSuite-style mid-tier services (4 services: HDSearch, Router,
 *  SetAlgebra, Recommend), each fanning out to leaf shards. */
std::vector<ServiceSpec> usuite_specs();

/** FunctionBench serverless functions (6 functions). */
std::vector<ServiceSpec> serverless_specs();

/**
 * Coarse-grained image-processing and RNN applications standing in for the
 * RELIEF gem5 artifact: fixed linear chains of long accelerator operations
 * (hundreds of microseconds), no in-flight branching.
 */
std::vector<ServiceSpec> relief_suite_specs();

/**
 * Registers the RLF_* linear-chain traces the relief suite references.
 * Seven non-TCP accelerator units stand in for the artifact's seven
 * coarse-grained accelerators.
 */
void register_relief_traces(core::TraceLibrary& lib);

/** Instantiates runtime Services against a trace library. */
std::vector<std::unique_ptr<Service>> build_services(
    const std::vector<ServiceSpec>& specs, const core::TraceLibrary& lib);

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_SUITES_H_
