#include "workload/parallel_runner.h"

#include <algorithm>
#include <cstdlib>

namespace accelflow::workload {

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads == 0 ? default_threads() : threads) {}

unsigned ParallelRunner::default_threads() {
  if (const char* v = std::getenv("AF_BENCH_THREADS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned ParallelRunner::worker_count(std::size_t items) const {
  return static_cast<unsigned>(
      std::min<std::size_t>(threads_, std::max<std::size_t>(items, 1)));
}

std::vector<ExperimentResult> ParallelRunner::run(
    const std::vector<ExperimentConfig>& configs) const {
  return map(configs, [](const ExperimentConfig& cfg) {
    return run_experiment(cfg);
  });
}

}  // namespace accelflow::workload
