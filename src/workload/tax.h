#ifndef ACCELFLOW_WORKLOAD_TAX_H_
#define ACCELFLOW_WORKLOAD_TAX_H_

#include <array>
#include <string_view>

#include "accel/types.h"

/**
 * @file
 * Datacenter-tax categories as the paper's Figure 1 groups them: the six
 * accelerator-backed categories plus the core application logic.
 */

namespace accelflow::workload {

/** Figure 1's execution-time categories. */
enum class TaxCategory : std::uint8_t {
  kAppLogic = 0,
  kTcp = 1,
  kEncr = 2,  ///< (De)Encryption.
  kRpc = 3,
  kSer = 4,   ///< (De)Serialization.
  kCmp = 5,   ///< (De)Compression.
  kLdb = 6,
};

inline constexpr std::size_t kNumTaxCategories = 7;

constexpr std::string_view name_of(TaxCategory c) {
  constexpr std::string_view kNames[kNumTaxCategories] = {
      "AppLogic", "TCP", "(De)Encr", "RPC", "(De)Ser", "(De)Cmp", "LdB"};
  return kNames[static_cast<std::size_t>(c)];
}

/** Category an accelerator's work is accounted under. */
constexpr TaxCategory category_of(accel::AccelType t) {
  switch (t) {
    case accel::AccelType::kTcp:
      return TaxCategory::kTcp;
    case accel::AccelType::kEncr:
    case accel::AccelType::kDecr:
      return TaxCategory::kEncr;
    case accel::AccelType::kRpc:
      return TaxCategory::kRpc;
    case accel::AccelType::kSer:
    case accel::AccelType::kDser:
      return TaxCategory::kSer;
    case accel::AccelType::kCmp:
    case accel::AccelType::kDcmp:
      return TaxCategory::kCmp;
    case accel::AccelType::kLdb:
      return TaxCategory::kLdb;
  }
  return TaxCategory::kAppLogic;
}

/** Per-category fractions of a service's total CPU time (sums to 1). */
using TaxFractions = std::array<double, kNumTaxCategories>;

/** The Figure 1 fleet-average fractions the suite calibrates to. */
inline constexpr TaxFractions kPaperAverageFractions = {
    0.207, 0.256, 0.146, 0.032, 0.224, 0.095, 0.039};

}  // namespace accelflow::workload

#endif  // ACCELFLOW_WORKLOAD_TAX_H_
