#ifndef ACCELFLOW_NOC_MESH_H_
#define ACCELFLOW_NOC_MESH_H_

#include <cstdint>
#include <vector>

#include "sim/server.h"
#include "sim/simulator.h"
#include "sim/time.h"

/**
 * @file
 * 2-D mesh on-chip network with XY dimension-ordered routing.
 *
 * Table III: 3 cycles/hop, 16-byte links. Transfers reserve every link on
 * the route for the message's serialization time (a wormhole-like
 * approximation), so both latency and bandwidth contention are modeled.
 */

namespace accelflow::noc {

/** Coordinates of a mesh node. */
struct Coord {
  int x = 0;
  int y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/** Mesh parameters. */
struct MeshParams {
  int width = 6;
  int height = 6;
  double hop_cycles = 3.0;
  double link_bytes_per_cycle = 16.0;
  double clock_ghz = 2.4;
};

/** Mesh statistics. */
struct MeshStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  std::uint64_t total_hops = 0;
  sim::TimePs contention_time = 0;  ///< Waiting for busy links.
};

/** A width x height mesh. */
class Mesh {
 public:
  Mesh(sim::Simulator& sim, const MeshParams& params);

  /**
   * Transfers `bytes` from `src` to `dst`.
   *
   * @param ready_at earliest time the data is available at `src` (for
   *        chaining across network segments); defaults to now.
   * @return completion time (head latency + serialization + contention).
   */
  sim::TimePs transfer(Coord src, Coord dst, std::uint64_t bytes,
                       sim::TimePs ready_at = 0);

  /** Zero-load latency between two nodes for a message of `bytes`. */
  sim::TimePs zero_load_latency(Coord src, Coord dst,
                                std::uint64_t bytes) const;

  int hops(Coord src, Coord dst) const;
  const MeshParams& params() const { return params_; }
  const MeshStats& stats() const { return stats_; }
  bool contains(Coord c) const {
    return c.x >= 0 && c.x < params_.width && c.y >= 0 && c.y < params_.height;
  }

  /** Deep copy of link occupancy + counters (DESIGN.md §13). */
  struct Checkpoint {
    std::vector<sim::TimePs> link_free_at;  ///< Per-directional-link times.
    MeshStats stats;                        ///< Counters.
  };

  /** Captures link occupancy and counters (route scratch excluded). */
  Checkpoint checkpoint() const { return Checkpoint{link_free_at_, stats_}; }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    link_free_at_ = c.link_free_at;
    stats_ = c.stats;
  }

 private:
  // Links are directional; index encodes (node, direction).
  enum Direction { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
  std::size_t link_index(Coord from, Direction d) const;
  /** Appends the XY route's link indices from src to dst to `out`. */
  void route(Coord src, Coord dst, std::vector<std::size_t>& out) const;

  sim::Simulator& sim_;
  MeshParams params_;
  sim::Clock clock_;
  sim::TimePs hop_latency_;
  double link_bytes_per_ps_;
  std::vector<sim::TimePs> link_free_at_;
  MeshStats stats_;
  std::vector<std::size_t> route_scratch_;
};

}  // namespace accelflow::noc

#endif  // ACCELFLOW_NOC_MESH_H_
