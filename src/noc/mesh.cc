#include "noc/mesh.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace accelflow::noc {

Mesh::Mesh(sim::Simulator& sim, const MeshParams& params)
    : sim_(sim),
      params_(params),
      clock_(params.clock_ghz),
      hop_latency_(clock_.cycles_to_ps(params.hop_cycles)),
      link_bytes_per_ps_(params.link_bytes_per_cycle * params.clock_ghz /
                         1000.0) {
  link_free_at_.assign(
      static_cast<std::size_t>(params_.width) * params_.height * 4, 0);
}

std::size_t Mesh::link_index(Coord from, Direction d) const {
  return (static_cast<std::size_t>(from.y) * params_.width + from.x) * 4 + d;
}

void Mesh::route(Coord src, Coord dst, std::vector<std::size_t>& out) const {
  // XY routing: first along X, then along Y.
  Coord cur = src;
  while (cur.x != dst.x) {
    const Direction d = dst.x > cur.x ? kEast : kWest;
    out.push_back(link_index(cur, d));
    cur.x += dst.x > cur.x ? 1 : -1;
  }
  while (cur.y != dst.y) {
    const Direction d = dst.y > cur.y ? kNorth : kSouth;
    out.push_back(link_index(cur, d));
    cur.y += dst.y > cur.y ? 1 : -1;
  }
}

int Mesh::hops(Coord src, Coord dst) const {
  return std::abs(src.x - dst.x) + std::abs(src.y - dst.y);
}

sim::TimePs Mesh::zero_load_latency(Coord src, Coord dst,
                                    std::uint64_t bytes) const {
  const int h = hops(src, dst);
  const auto ser =
      static_cast<sim::TimePs>(static_cast<double>(bytes) / link_bytes_per_ps_ + 0.5);
  return static_cast<sim::TimePs>(h) * hop_latency_ + ser;
}

sim::TimePs Mesh::transfer(Coord src, Coord dst, std::uint64_t bytes,
                           sim::TimePs ready_at) {
  assert(contains(src) && contains(dst));
  ++stats_.transfers;
  stats_.bytes += bytes;
  const sim::TimePs ready = std::max(sim_.now(), ready_at);
  const int h = hops(src, dst);
  stats_.total_hops += static_cast<std::uint64_t>(h);
  if (h == 0) return ready;  // Same node: local queue move, free.

  route_scratch_.clear();
  route(src, dst, route_scratch_);

  // The message can start once every link on the path is free (wormhole
  // approximation: the worm occupies the whole path while serializing).
  sim::TimePs start = ready;
  for (const std::size_t li : route_scratch_) {
    start = std::max(start, link_free_at_[li]);
  }
  stats_.contention_time += start - ready;

  const auto ser =
      static_cast<sim::TimePs>(static_cast<double>(bytes) / link_bytes_per_ps_ + 0.5);
  for (const std::size_t li : route_scratch_) {
    link_free_at_[li] = start + ser;
  }
  return start + static_cast<sim::TimePs>(h) * hop_latency_ + ser;
}

}  // namespace accelflow::noc
