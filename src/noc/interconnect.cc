#include "noc/interconnect.h"

#include <algorithm>
#include <cassert>

namespace accelflow::noc {

namespace {
/** Index of the unordered pair (a, b), a != b, in a triangular layout. */
std::size_t pair_index(int a, int b, int n) {
  // The diagonal has no link: pair_index(a, a, n) would silently alias a
  // neighboring pair's channel (and a == n - 1 would index out of range).
  assert(a != b && "no inter-chiplet link from a chiplet to itself");
  assert(a >= 0 && b >= 0 && a < n && b < n && "chiplet index out of range");
  if (a > b) std::swap(a, b);
  // Row-major upper triangle without diagonal.
  return static_cast<std::size_t>(a * n + b - (a + 1) * (a + 2) / 2);
}
}  // namespace

Interconnect::Interconnect(sim::Simulator& sim,
                           const InterconnectParams& params)
    : sim_(sim), params_(params) {
  assert(!params_.chiplet_meshes.empty());
  for (const auto& mp : params_.chiplet_meshes) {
    meshes_.push_back(std::make_unique<Mesh>(sim_, mp));
  }
  const int n = num_chiplets();
  const sim::Clock clock(params_.clock_ghz);
  const sim::TimePs lat = clock.cycles_to_ps(params_.inter_chiplet_cycles);
  const std::size_t num_links = static_cast<std::size_t>(n) * (n - 1) / 2;
  links_.reserve(num_links);
  for (std::size_t i = 0; i < num_links; ++i) {
    links_.emplace_back(sim_, params_.inter_chiplet_gbps * 1e9, lat);
  }
}

sim::Channel& Interconnect::link(int a, int b) {
  assert(a != b && "intra-chiplet traffic rides the mesh, not a link");
  return links_[pair_index(a, b, num_chiplets())];
}

const sim::Channel& Interconnect::link(int a, int b) const {
  assert(a != b && "intra-chiplet traffic rides the mesh, not a link");
  return links_[pair_index(a, b, num_chiplets())];
}

sim::TimePs Interconnect::transfer(Location src, Location dst,
                                   std::uint64_t bytes,
                                   sim::TimePs ready_at) {
  const sim::TimePs start = std::max(ready_at, sim_.now());
  if (src.chiplet == dst.chiplet) {
    ++stats_.intra_transfers;
    const auto hops =
        static_cast<std::uint64_t>(mesh(src.chiplet).hops(src.coord, dst.coord));
    stats_.hops += hops;
    sim::TimePs done =
        mesh(src.chiplet).transfer(src.coord, dst.coord, bytes, ready_at);
    done = apply_degradation(src.chiplet, start, done);
    if (tracer_ != nullptr) {
      tracer_->complete(obs::Subsys::kNoc, obs::SpanKind::kNocTransfer,
                        static_cast<std::uint32_t>(src.chiplet), start, done,
                        hops);
    }
    return done;
  }
  ++stats_.inter_transfers;
  stats_.inter_bytes += bytes;
  // Source mesh to the chiplet edge router at (0, 0), then across the
  // package link, then edge router to destination on the target mesh.
  const Coord edge{0, 0};
  const sim::TimePs at_edge =
      mesh(src.chiplet).transfer(src.coord, edge, bytes, ready_at);
  const sim::TimePs crossed =
      link(src.chiplet, dst.chiplet).transfer(bytes, at_edge);
  sim::TimePs done =
      mesh(dst.chiplet).transfer(edge, dst.coord, bytes, crossed);
  done = apply_degradation(src.chiplet, start, done);
  const std::uint64_t hops =
      static_cast<std::uint64_t>(mesh(src.chiplet).hops(src.coord, edge) +
                                 mesh(dst.chiplet).hops(edge, dst.coord));
  stats_.hops += hops;
  if (tracer_ != nullptr) {
    tracer_->complete(obs::Subsys::kNoc, obs::SpanKind::kNocTransfer,
                      static_cast<std::uint32_t>(src.chiplet), start, done,
                      hops);
    tracer_->complete(obs::Subsys::kNoc, obs::SpanKind::kNocLink,
                      kLinkTid, at_edge, crossed, bytes);
  }
  return done;
}

sim::TimePs Interconnect::apply_degradation(int chiplet, sim::TimePs start,
                                            sim::TimePs done) {
  if (fault_hooks_ == nullptr) return done;
  const double factor = fault_hooks_->link_degradation(chiplet);
  if (factor <= 1.0) return done;
  // The message is stretched in flight (CRC retries); router/link
  // occupancy bookkeeping is untouched — only this message is delayed.
  ++stats_.degraded_transfers;
  return start + static_cast<sim::TimePs>(
                     static_cast<double>(done - start) * factor + 0.5);
}

sim::TimePs Interconnect::zero_load_latency(Location src, Location dst,
                                            std::uint64_t bytes) const {
  if (src.chiplet == dst.chiplet) {
    return meshes_[static_cast<std::size_t>(src.chiplet)]->zero_load_latency(
        src.coord, dst.coord, bytes);
  }
  const Coord edge{0, 0};
  const auto& l = link(src.chiplet, dst.chiplet);
  return meshes_[static_cast<std::size_t>(src.chiplet)]->zero_load_latency(
             src.coord, edge, bytes) +
         l.fixed_latency() + l.serialization_time(bytes) +
         meshes_[static_cast<std::size_t>(dst.chiplet)]->zero_load_latency(
             edge, dst.coord, bytes);
}

}  // namespace accelflow::noc
