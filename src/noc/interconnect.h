#ifndef ACCELFLOW_NOC_INTERCONNECT_H_
#define ACCELFLOW_NOC_INTERCONNECT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "noc/mesh.h"
#include "obs/tracer.h"
#include "sim/fault_hooks.h"
#include "sim/server.h"
#include "sim/simulator.h"

/**
 * @file
 * The full package interconnect: one mesh per chiplet plus a fully
 * connected inter-chiplet network (Table III: 60-cycle links).
 *
 * Note on inter-chiplet bandwidth: Table III lists "1Gb/s/link", which is
 * inconsistent with the paper's own data-movement volumes (a single 2KB
 * payload would serialize for 16us, dwarfing every other latency the paper
 * reports). We treat that as a typo for a UCIe-class link and default to
 * 128 GB/s, configurable for sensitivity studies.
 */

namespace accelflow::noc {

/** A position in the package: which chiplet, and where on its mesh. */
struct Location {
  int chiplet = 0;
  Coord coord;
  friend bool operator==(const Location&, const Location&) = default;
};

/** Interconnect parameters. */
struct InterconnectParams {
  std::vector<MeshParams> chiplet_meshes;  ///< One entry per chiplet.
  double inter_chiplet_cycles = 60.0;      ///< Per-crossing latency.
  double inter_chiplet_gbps = 8.0;         ///< Per-link bandwidth (see note).
  double clock_ghz = 2.4;
};

/** Interconnect statistics. */
struct InterconnectStats {
  std::uint64_t intra_transfers = 0;
  std::uint64_t inter_transfers = 0;
  std::uint64_t inter_bytes = 0;
  std::uint64_t hops = 0;  ///< Total mesh hops routed (all transfers).
  std::uint64_t degraded_transfers = 0;  ///< Stretched by injected faults.
};

/**
 * Package-level network facade.
 *
 * A cross-chiplet transfer is modeled as: source mesh to the chiplet edge
 * router (at mesh coordinate (0,0)), the inter-chiplet link, then edge
 * router to destination on the target mesh.
 */
class Interconnect {
 public:
  /** Trace track carrying inter-chiplet link legs (obs::SpanKind::kNocLink);
   *  mesh-transfer spans use the source chiplet index as their track. */
  static constexpr std::uint32_t kLinkTid = 1000;

  Interconnect(sim::Simulator& sim, const InterconnectParams& params);

  /**
   * Transfers `bytes`; returns the completion time.
   * @param ready_at earliest time the data is available at `src`.
   */
  sim::TimePs transfer(Location src, Location dst, std::uint64_t bytes,
                       sim::TimePs ready_at = 0);

  /** Zero-load latency (no contention) for planning/validation. */
  sim::TimePs zero_load_latency(Location src, Location dst,
                                std::uint64_t bytes) const;

  /** Number of chiplets in the package. */
  int num_chiplets() const { return static_cast<int>(meshes_.size()); }
  /** The mesh of `chiplet`. */
  Mesh& mesh(int chiplet) { return *meshes_[static_cast<std::size_t>(chiplet)]; }
  /** Transfer counters. */
  const InterconnectStats& stats() const { return stats_; }
  /** The configured parameters. */
  const InterconnectParams& params() const { return params_; }

  /**
   * Attaches the span tracer: each transfer emits an
   * obs::SpanKind::kNocTransfer span on the source chiplet's track (with
   * the routed hop count as its arg) and cross-chiplet transfers add a
   * kNocLink span for the package-link leg. Pass nullptr to detach.
   * Recording never perturbs routing or timing (see obs/tracer.h).
   */
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /**
   * Attaches (nullptr: detaches) the fault-injection sink: each transfer
   * consults it (keyed by the source chiplet) for a duration multiplier
   * modelling a degraded link — CRC retries stretching the effective
   * transfer time (DESIGN.md §14). Perturbs simulated time.
   */
  void set_fault_hooks(sim::FaultHooks* hooks) { fault_hooks_ = hooks; }

  /** Deep copy of mesh + link occupancy + counters (DESIGN.md §13). */
  struct Checkpoint {
    std::vector<Mesh::Checkpoint> meshes;        ///< Per-chiplet meshes.
    std::vector<sim::Channel::Checkpoint> links; ///< Inter-chiplet links.
    InterconnectStats stats;                     ///< Counters.
  };

  /** Captures all mesh/link occupancy and counters. */
  Checkpoint checkpoint() const {
    Checkpoint c;
    for (const auto& m : meshes_) c.meshes.push_back(m->checkpoint());
    for (const auto& l : links_) c.links.push_back(l.checkpoint());
    c.stats = stats_;
    return c;
  }

  /**
   * The inter-chiplet channel carrying the unordered pair (a, b).
   * Requires a != b (a chiplet has no link to itself — intra-chiplet
   * traffic rides the mesh; debug builds assert) and both in
   * [0, num_chiplets()). Exposed read-only so tests can pin the
   * triangular pair indexing (symmetry, distinctness).
   */
  const sim::Channel& link(int a, int b) const;

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    for (std::size_t i = 0; i < meshes_.size(); ++i) {
      meshes_[i]->restore(c.meshes[i]);
    }
    for (std::size_t i = 0; i < links_.size(); ++i) {
      links_[i].restore(c.links[i]);
    }
    stats_ = c.stats;
  }

 private:
  sim::Channel& link(int a, int b);

  /** Stretches [start, done] by the injected degradation factor, if any. */
  sim::TimePs apply_degradation(int chiplet, sim::TimePs start,
                                sim::TimePs done);

  sim::Simulator& sim_;
  InterconnectParams params_;
  std::vector<std::unique_ptr<Mesh>> meshes_;
  // Fully connected: one channel per unordered chiplet pair.
  std::vector<sim::Channel> links_;
  InterconnectStats stats_;
  obs::Tracer* tracer_ = nullptr;
  sim::FaultHooks* fault_hooks_ = nullptr;  ///< Null: fault-free run.
};

}  // namespace accelflow::noc

#endif  // ACCELFLOW_NOC_INTERCONNECT_H_
