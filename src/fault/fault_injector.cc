#include "fault/fault_injector.h"

#include <algorithm>
#include <cassert>

namespace accelflow::fault {

namespace {

/** splitmix64-style mixer: derives one stream seed per (site, unit). */
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x;
}

std::uint64_t stream_key(FaultSite site, int unit) {
  return (static_cast<std::uint64_t>(site) << 32) |
         static_cast<std::uint32_t>(unit);
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {}

sim::Rng& FaultInjector::stream(FaultSite site, int unit) {
  const std::uint64_t key = stream_key(site, unit);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_.emplace(key, sim::Rng(mix(plan_.seed, key))).first;
  }
  return it->second;
}

bool FaultInjector::window_active(FaultSite site, int unit,
                                  double* param) const {
  const sim::TimePs now = sim_.now();
  for (const FaultWindow& w : plan_.windows) {
    if (w.site != site) continue;
    if (w.unit != -1 && w.unit != unit) continue;
    if (now < w.begin || now >= w.end) continue;
    if (param != nullptr) *param = w.param;
    return true;
  }
  return false;
}

sim::TimePs FaultInjector::pe_stall(int unit) {
  assert(unit >= 0 && static_cast<std::size_t>(unit) < accel::kNumAccelTypes);
  const AccelFaultRates& r = plan_.accel[static_cast<std::size_t>(unit)];
  sim::TimePs t = 0;
  if (r.pe_stall_prob > 0 &&
      stream(FaultSite::kPeStall, unit).bernoulli(r.pe_stall_prob)) {
    t = sim::microseconds(r.pe_stall_us);
  }
  double us = 0.0;
  if (window_active(FaultSite::kPeStall, unit, &us)) {
    t = std::max(t, sim::microseconds(us));
  }
  if (t > 0) {
    ++stats_.pe_stalls;
    stats_.stall_time += t;
  }
  return t;
}

bool FaultInjector::pe_kill(int unit) {
  assert(unit >= 0 && static_cast<std::size_t>(unit) < accel::kNumAccelTypes);
  const AccelFaultRates& r = plan_.accel[static_cast<std::size_t>(unit)];
  bool kill = r.pe_kill_prob > 0 &&
              stream(FaultSite::kPeKill, unit).bernoulli(r.pe_kill_prob);
  kill = kill || window_active(FaultSite::kPeKill, unit, nullptr);
  if (kill) ++stats_.pe_kills;
  return kill;
}

bool FaultInjector::queue_reject(int unit) {
  assert(unit >= 0 && static_cast<std::size_t>(unit) < accel::kNumAccelTypes);
  const AccelFaultRates& r = plan_.accel[static_cast<std::size_t>(unit)];
  bool reject =
      r.queue_reject_prob > 0 &&
      stream(FaultSite::kQueueReject, unit).bernoulli(r.queue_reject_prob);
  reject = reject || window_active(FaultSite::kQueueReject, unit, nullptr);
  if (reject) ++stats_.queue_rejects;
  return reject;
}

bool FaultInjector::iommu_fault(int unit) {
  bool fault =
      plan_.iommu_fault_prob > 0 &&
      stream(FaultSite::kIommuFault, unit).bernoulli(plan_.iommu_fault_prob);
  fault = fault || window_active(FaultSite::kIommuFault, unit, nullptr);
  if (fault) ++stats_.iommu_faults;
  return fault;
}

sim::TimePs FaultInjector::dma_error_penalty(int unit) {
  sim::TimePs t = 0;
  if (plan_.dma_error_prob > 0 &&
      stream(FaultSite::kDmaError, unit).bernoulli(plan_.dma_error_prob)) {
    t = sim::microseconds(plan_.dma_error_penalty_us);
  }
  double us = 0.0;
  if (window_active(FaultSite::kDmaError, unit, &us)) {
    t = std::max(t, sim::microseconds(us));
  }
  if (t > 0) {
    ++stats_.dma_errors;
    stats_.dma_penalty += t;
  }
  return t;
}

double FaultInjector::link_degradation(int unit) {
  double factor = 1.0;
  if (plan_.link_degrade_prob > 0 &&
      stream(FaultSite::kLinkDegrade, unit)
          .bernoulli(plan_.link_degrade_prob)) {
    factor = plan_.link_degrade_factor;
  }
  double wf = 1.0;
  if (window_active(FaultSite::kLinkDegrade, unit, &wf)) {
    factor = std::max(factor, wf);
  }
  if (factor > 1.0) ++stats_.degraded_transfers;
  return factor;
}

void FaultInjector::snapshot_metrics(obs::MetricsRegistry& reg) const {
  reg.set("fault.pe_stalls", static_cast<double>(stats_.pe_stalls));
  reg.set("fault.pe_kills", static_cast<double>(stats_.pe_kills));
  reg.set("fault.queue_rejects", static_cast<double>(stats_.queue_rejects));
  reg.set("fault.iommu_faults", static_cast<double>(stats_.iommu_faults));
  reg.set("fault.dma_errors", static_cast<double>(stats_.dma_errors));
  reg.set("fault.degraded_transfers",
          static_cast<double>(stats_.degraded_transfers));
  reg.set("fault.stall_time_ps", static_cast<double>(stats_.stall_time));
  reg.set("fault.dma_penalty_ps", static_cast<double>(stats_.dma_penalty));
}

FaultInjector::Checkpoint FaultInjector::checkpoint() const {
  Checkpoint c;
  c.streams.reserve(streams_.size());
  for (const auto& [key, rng] : streams_) {
    c.streams.emplace_back(key, rng.state());
  }
  // Stable order keeps the checkpoint itself comparable across runs.
  std::sort(c.streams.begin(), c.streams.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  c.stats = stats_;
  return c;
}

void FaultInjector::restore(const Checkpoint& c) {
  streams_.clear();
  for (const auto& [key, state] : c.streams) {
    sim::Rng rng(0);
    rng.set_state(state);
    streams_.emplace(key, rng);
  }
  stats_ = c.stats;
}

}  // namespace accelflow::fault
