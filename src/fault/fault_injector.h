#ifndef ACCELFLOW_FAULT_FAULT_INJECTOR_H_
#define ACCELFLOW_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "sim/fault_hooks.h"
#include "sim/random.h"
#include "sim/simulator.h"

/**
 * @file
 * The deterministic fault injector (DESIGN.md §14): evaluates a FaultPlan
 * at every sim::FaultHooks consultation point. Each (site, unit) pair owns
 * an independent sim::Rng stream seeded from the plan seed, so injecting
 * faults into one component never shifts another component's draws, and
 * the same plan + seed reproduces the same fault sequence bit-for-bit on
 * any thread count. The injector perturbs simulated time, so it is part
 * of the deterministic state and checkpoints/restores with the run
 * (workload::SweepSession captures it in its fork).
 */

namespace accelflow::fault {

/** Counters of every fault actually injected. */
struct FaultStats {
  std::uint64_t pe_stalls = 0;           ///< kPeStall firings.
  std::uint64_t pe_kills = 0;            ///< kPeKill firings.
  std::uint64_t queue_rejects = 0;       ///< kQueueReject firings.
  std::uint64_t iommu_faults = 0;        ///< kIommuFault firings.
  std::uint64_t dma_errors = 0;          ///< kDmaError firings.
  std::uint64_t degraded_transfers = 0;  ///< kLinkDegrade firings.
  sim::TimePs stall_time = 0;    ///< Total injected PE stall latency.
  sim::TimePs dma_penalty = 0;   ///< Total injected DMA retry latency.

  /** Sum of all six firing counters. */
  std::uint64_t total() const {
    return pe_stalls + pe_kills + queue_rejects + iommu_faults + dma_errors +
           degraded_transfers;
  }
};

/** Evaluates a FaultPlan at the hardware's FaultHooks consultation points. */
class FaultInjector final : public sim::FaultHooks {
 public:
  /** The simulator provides the clock for scheduled fault windows. */
  FaultInjector(sim::Simulator& sim, FaultPlan plan);

  /** The plan this injector evaluates. */
  const FaultPlan& plan() const { return plan_; }
  /** Counters of every fault injected so far. */
  const FaultStats& stats() const { return stats_; }

  /** Zeroes the injection counters (end of warmup). */
  void reset_stats() { stats_ = FaultStats{}; }

  /** Exports injection counters under "fault.*" dotted names. */
  void snapshot_metrics(obs::MetricsRegistry& reg) const;

  // --- sim::FaultHooks ---------------------------------------------------
  sim::TimePs pe_stall(int unit) override;
  bool pe_kill(int unit) override;
  bool queue_reject(int unit) override;
  bool iommu_fault(int unit) override;
  sim::TimePs dma_error_penalty(int unit) override;
  double link_degradation(int unit) override;

  // --- Checkpoint / fork (DESIGN.md §13) ---------------------------------

  /**
   * Deep copy of the injector's deterministic state: every materialized
   * (site, unit) stream plus the counters. Streams first touched *after*
   * a checkpoint are simply dropped by restore() — recreating one on
   * demand reseeds it identically, so forked timelines stay bit-exact.
   */
  struct Checkpoint {
    /** (stream key, RNG state) for every stream drawn from so far. */
    std::vector<std::pair<std::uint64_t, std::array<std::uint64_t, 4>>>
        streams;
    FaultStats stats;  ///< Injection counters at capture time.
  };

  /** Captures the injector's deterministic state. */
  Checkpoint checkpoint() const;
  /** Restores a previously captured state (drops newer streams). */
  void restore(const Checkpoint& c);

 private:
  /** The lazily created random stream of one (site, unit) pair. */
  sim::Rng& stream(FaultSite site, int unit);

  /** True if a scheduled window for (site, unit) covers the current time;
   *  `param` receives the window magnitude. */
  bool window_active(FaultSite site, int unit, double* param) const;

  sim::Simulator& sim_;
  FaultPlan plan_;
  FaultStats stats_;
  std::unordered_map<std::uint64_t, sim::Rng> streams_;
};

}  // namespace accelflow::fault

#endif  // ACCELFLOW_FAULT_FAULT_INJECTOR_H_
