#ifndef ACCELFLOW_FAULT_FAULT_PLAN_H_
#define ACCELFLOW_FAULT_FAULT_PLAN_H_

#include <array>
#include <cstdint>
#include <vector>

#include "accel/types.h"
#include "sim/time.h"

/**
 * @file
 * Declarative description of the faults a run should experience
 * (DESIGN.md §14). A FaultPlan is plain copyable data: per-component
 * probability rates (evaluated against seeded per-site random streams by
 * fault::FaultInjector) plus optional scheduled windows during which a
 * fault class fires deterministically. Because the plan is data and the
 * injector draws lazily at consultation points, no calendar events are
 * needed — a faulted run checkpoints and forks exactly like a clean one.
 */

namespace accelflow::fault {

/** Fault classes, one per FaultHooks consultation point. */
enum class FaultSite : std::uint8_t {
  kPeStall = 0,     ///< Extra PE service latency at dispatch.
  kPeKill = 1,      ///< PE completes but produces no output.
  kQueueReject = 2, ///< Input-queue admission refused (queue-full storm).
  kIommuFault = 3,  ///< Forced translation fault (fault-service path).
  kDmaError = 4,    ///< Corrupted-and-retried DMA transfer penalty.
  kLinkDegrade = 5, ///< NoC transfer duration multiplier.
};

/** Number of FaultSite values (array-sizing constant). */
inline constexpr std::size_t kNumFaultSites = 6;

/** Per-accelerator-type probabilistic fault rates. */
struct AccelFaultRates {
  double pe_stall_prob = 0.0;     ///< Per dispatch.
  double pe_stall_us = 5.0;       ///< Stall duration when it fires.
  double pe_kill_prob = 0.0;      ///< Per dispatch.
  double queue_reject_prob = 0.0; ///< Per admission attempt.
};

/**
 * A scheduled deterministic fault: while sim-time is in [begin, end), the
 * site fires on every consultation of the matching unit. `param` carries
 * the magnitude where one applies (stall/penalty in us for kPeStall /
 * kDmaError, duration multiplier for kLinkDegrade; ignored elsewhere).
 */
struct FaultWindow {
  FaultSite site = FaultSite::kPeStall;  ///< Which fault class fires.
  int unit = -1;  ///< Consulting unit, or -1 for every unit of the site.
  sim::TimePs begin = 0;             ///< Window start (inclusive).
  sim::TimePs end = sim::kTimeNever; ///< Window end (exclusive).
  double param = 1.0;  ///< Site-specific magnitude (see struct doc).
};

/** The full fault schedule for one run. */
struct FaultPlan {
  /** Root seed of the injector's per-(site, unit) random streams. */
  std::uint64_t seed = 0xFA017;

  /** Probabilistic rates per accelerator type (index = accel index). */
  std::array<AccelFaultRates, accel::kNumAccelTypes> accel{};

  double iommu_fault_prob = 0.0;      ///< Per translation.
  double dma_error_prob = 0.0;        ///< Per transfer.
  double dma_error_penalty_us = 2.0;  ///< Added latency when it fires.
  double link_degrade_prob = 0.0;     ///< Per NoC transfer.
  double link_degrade_factor = 2.0;   ///< Duration multiplier when it fires.

  /** Scheduled deterministic windows, checked lazily against sim-time. */
  std::vector<FaultWindow> windows;

  /** True if any fault can ever fire under this plan. */
  bool enabled() const {
    for (const AccelFaultRates& r : accel) {
      if (r.pe_stall_prob > 0 || r.pe_kill_prob > 0 ||
          r.queue_reject_prob > 0) {
        return true;
      }
    }
    return iommu_fault_prob > 0 || dma_error_prob > 0 ||
           link_degrade_prob > 0 || !windows.empty();
  }

  /**
   * Uniform plan: every fault class fires with probability `rate` at every
   * site (the acceptance-criteria "1% across all nine accelerator types"
   * shape, and the AF_FAULTS=<rate> / --faults=<rate> knob).
   */
  static FaultPlan uniform(double rate, std::uint64_t seed = 0xFA017) {
    FaultPlan p;
    p.seed = seed;
    for (AccelFaultRates& r : p.accel) {
      r.pe_stall_prob = rate;
      r.pe_kill_prob = rate;
      r.queue_reject_prob = rate;
    }
    p.iommu_fault_prob = rate;
    p.dma_error_prob = rate;
    p.link_degrade_prob = rate;
    return p;
  }
};

}  // namespace accelflow::fault

#endif  // ACCELFLOW_FAULT_FAULT_PLAN_H_
