#ifndef ACCELFLOW_CPU_CORE_CLUSTER_H_
#define ACCELFLOW_CPU_CORE_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

/**
 * @file
 * CPU core occupancy model.
 *
 * Application logic, RPC handler glue, interrupt handlers and CPU-fallback
 * tax operations all occupy cores; the accelerated architectures differ in
 * *how much* core time orchestration consumes, so core contention must be
 * modeled explicitly. Each core is a non-preemptive FIFO server (requests
 * are run-to-completion segments, as in a typical RPC server thread pool).
 */

namespace accelflow::cpu {

/** CPU cluster configuration (defaults per Table III / Section VI). */
struct CpuParams {
  int num_cores = 36;
  double clock_ghz = 2.4;
  /** Full cost of taking an interrupt: delivery, context switch, handler
   *  entry/exit. Charged to the interrupted core. */
  double interrupt_cycles = 10000;
  /** User-level notification from an accelerator (Table III: ~80 cycles). */
  double notification_cycles = 80;
  /** User-mode Enqueue instruction + A-DMA programming. */
  double enqueue_cycles = 60;
  /**
   * Processor-generation scaling (Section VII-C.4): app-logic speedup of
   * the modeled generation relative to Ice Lake. Tax operations benefit
   * less (they are memory/IO-bound), captured by tax_speed.
   */
  double app_speed = 1.0;
  double tax_speed = 1.0;
};

/** Per-cluster counters. */
struct CpuStats {
  std::uint64_t segments = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t notifications = 0;
  std::uint64_t enqueues = 0;
  sim::TimePs busy_time = 0;
  sim::TimePs interrupt_time = 0;
};

/** The 36-core cluster. */
class CoreCluster {
 public:
  using Callback = sim::Simulator::Callback;

  CoreCluster(sim::Simulator& sim, const CpuParams& params);

  int num_cores() const { return static_cast<int>(free_at_.size()); }
  const CpuParams& params() const { return params_; }

  /**
   * Runs a segment of `duration` on `core` (FIFO behind earlier work).
   * @return completion time; `done` fires then.
   */
  sim::TimePs run_on(int core, sim::TimePs duration, Callback done = nullptr);

  /**
   * Delivers an interrupt to `core`: charges interrupt_cycles plus
   * `handler_time`, then fires `done`.
   */
  sim::TimePs interrupt(int core, sim::TimePs handler_time,
                        Callback done = nullptr);

  /**
   * User-level notification (MWAIT-style wake): the core resumes after the
   * notification latency; only notification_cycles of core time.
   */
  sim::TimePs notify(int core, Callback done = nullptr);

  /** Charges the user-mode Enqueue instruction to `core`. */
  sim::TimePs charge_enqueue(int core);

  /** Index of the core that frees earliest (LdB's choice). */
  int least_loaded() const;

  sim::TimePs core_free_at(int core) const {
    return free_at_[static_cast<std::size_t>(core)];
  }

  /** Converts a cycle count at the core clock into time. */
  sim::TimePs cycles(double c) const { return clock_.cycles_to_ps(c); }

  /** Mean core utilization over [0, now]. */
  double utilization() const;

  const CpuStats& stats() const { return stats_; }

  /**
   * Adjusts the generation speed factors (Section VII-C.4). Used by
   * Machine::set_generation when a forked sweep point diverges from a
   * shared warmup checkpoint; already-scheduled segments are unaffected.
   */
  void set_speeds(double app_speed, double tax_speed) {
    params_.app_speed = app_speed;
    params_.tax_speed = tax_speed;
  }

  /** Deep copy of core occupancy + counters (DESIGN.md §13). */
  struct Checkpoint {
    std::vector<sim::TimePs> free_at;  ///< Per-core next-free times.
    CpuStats stats;                    ///< Counters.
    CpuParams params;                  ///< Speed factors (divergable).
  };

  /** Captures core occupancy, counters, and the (divergable) params. */
  Checkpoint checkpoint() const { return Checkpoint{free_at_, stats_, params_}; }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    free_at_ = c.free_at;
    stats_ = c.stats;
    params_ = c.params;
  }

 private:
  sim::TimePs occupy(int core, sim::TimePs duration, Callback done);

  sim::Simulator& sim_;
  CpuParams params_;
  sim::Clock clock_;
  std::vector<sim::TimePs> free_at_;
  CpuStats stats_;
};

}  // namespace accelflow::cpu

#endif  // ACCELFLOW_CPU_CORE_CLUSTER_H_
