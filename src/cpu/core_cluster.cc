#include "cpu/core_cluster.h"

#include <algorithm>
#include <cassert>

namespace accelflow::cpu {

CoreCluster::CoreCluster(sim::Simulator& sim, const CpuParams& params)
    : sim_(sim),
      params_(params),
      clock_(params.clock_ghz),
      free_at_(static_cast<std::size_t>(params.num_cores), 0) {}

sim::TimePs CoreCluster::occupy(int core, sim::TimePs duration,
                                Callback done) {
  assert(core >= 0 && core < num_cores());
  auto& free = free_at_[static_cast<std::size_t>(core)];
  const sim::TimePs start = std::max(sim_.now(), free);
  const sim::TimePs end = start + duration;
  free = end;
  stats_.busy_time += duration;
  if (done) sim_.schedule_at(end, std::move(done));
  return end;
}

sim::TimePs CoreCluster::run_on(int core, sim::TimePs duration,
                                Callback done) {
  ++stats_.segments;
  return occupy(core, duration, std::move(done));
}

sim::TimePs CoreCluster::interrupt(int core, sim::TimePs handler_time,
                                   Callback done) {
  ++stats_.interrupts;
  const sim::TimePs cost = cycles(params_.interrupt_cycles) + handler_time;
  stats_.interrupt_time += cost;
  return occupy(core, cost, std::move(done));
}

sim::TimePs CoreCluster::notify(int core, Callback done) {
  ++stats_.notifications;
  return occupy(core, cycles(params_.notification_cycles), std::move(done));
}

sim::TimePs CoreCluster::charge_enqueue(int core) {
  ++stats_.enqueues;
  return occupy(core, cycles(params_.enqueue_cycles), nullptr);
}

int CoreCluster::least_loaded() const {
  const auto it = std::min_element(free_at_.begin(), free_at_.end());
  return static_cast<int>(it - free_at_.begin());
}

double CoreCluster::utilization() const {
  const sim::TimePs elapsed = sim_.now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(stats_.busy_time) /
         (static_cast<double>(elapsed) * static_cast<double>(num_cores()));
}

}  // namespace accelflow::cpu
