#ifndef ACCELFLOW_ENERGY_MODEL_H_
#define ACCELFLOW_ENERGY_MODEL_H_

#include <array>
#include <cstdint>

#include "accel/types.h"
#include "sim/time.h"

/**
 * @file
 * Area / power / energy model (Section VI "Area Overhead" and Section
 * VII-B.5), seeded with the paper's McPAT-derived values at 7nm:
 *
 *  - baseline processor 122.3mm^2 (cores+L1/L2 83.1, LLC 38.2, net 1.0),
 *  - nine accelerators 44.9mm^2 with the published per-accelerator areas,
 *  - queues+dispatchers 3.4mm^2, A-DMA 1.3mm^2, accel network 0.4mm^2,
 *  - accelerators max 12.5W, orchestration structures max 5.0W.
 *
 * Energy is activity-based: busy time draws full power, idle time draws a
 * leakage fraction.
 */

namespace accelflow::energy {

/** Areas in mm^2 (paper Section VI). */
struct AreaModel {
  double cores_mm2 = 83.1;
  double llc_mm2 = 38.2;
  double core_net_mm2 = 1.0;
  /** TCP, Encr, Decr, RPC, Ser, Dser, Cmp, Dcmp, LdB. */
  std::array<double, accel::kNumAccelTypes> accel_mm2 = {
      9.1, 9.1, 9.1, 0.9, 0.6, 0.9, 9.1, 5.2, 0.9};
  double queues_dispatchers_mm2 = 3.4;
  double adma_mm2 = 1.3;
  double accel_net_mm2 = 0.4;

  double baseline_processor_mm2() const {
    return cores_mm2 + llc_mm2 + core_net_mm2;
  }
  double accelerators_mm2() const {
    double a = 0;
    for (const double x : accel_mm2) a += x;
    return a;
  }
  double orchestration_mm2() const {
    return queues_dispatchers_mm2 + adma_mm2 + accel_net_mm2;
  }
  double total_mm2() const {
    return baseline_processor_mm2() + accelerators_mm2() +
           orchestration_mm2();
  }
  /** AccelFlow-specific overhead as a share of the SoC (paper: <=2.9%). */
  double accelflow_overhead_fraction() const {
    return orchestration_mm2() / total_mm2();
  }
};

/** Power in watts. */
struct PowerModel {
  double core_active_w = 11.0;
  double core_idle_w = 1.0;
  double uncore_w = 42.0;          ///< LLC + memory controllers, static.
  double accel_max_total_w = 12.5; ///< Paper VII-B.5; split by area.
  double orchestration_max_w = 5.0;
  double idle_fraction = 0.12;     ///< Leakage share of max power.
  int num_cores = 36;

  /** Max power of one accelerator (area-proportional split). A zero-area
   *  model (every accelerator ablated away) draws nothing rather than
   *  dividing by zero and seeding NaN into downstream DVFS factors. */
  double accel_w(accel::AccelType t, const AreaModel& area = {}) const {
    const double total = area.accelerators_mm2();
    if (total <= 0) return 0.0;
    return accel_max_total_w * area.accel_mm2[accel::index_of(t)] / total;
  }

  double server_max_w() const {
    return core_active_w * num_cores + uncore_w + accel_max_total_w +
           orchestration_max_w;
  }
};

/** Activity inputs (busy times over a run of `elapsed`). */
struct Activity {
  sim::TimePs elapsed = 0;
  sim::TimePs core_busy = 0;
  std::array<sim::TimePs, accel::kNumAccelTypes> accel_busy{};
  sim::TimePs dispatcher_busy = 0;
  sim::TimePs dma_busy = 0;
  std::uint64_t requests = 0;
  /** PEs per accelerator: the denominator turning summed per-PE busy time
   *  into utilization. Zero (a PE-ablated config) is inert — accelerators
   *  contribute leakage only, never a divide-by-zero. */
  int pes_per_accel = 8;
};

/** Energy accounting for one run. */
struct EnergyReport {
  double core_j = 0;
  double uncore_j = 0;
  double accel_j = 0;
  double orchestration_j = 0;
  double total_j = 0;
  double avg_power_w = 0;
  double requests_per_joule = 0;
};

/** Computes the report for the given activity. */
EnergyReport compute_energy(const Activity& activity,
                            const PowerModel& power = {},
                            const AreaModel& area = {});

/**
 * Relative power draw of the accelerator complex at DVFS frequency scale
 * `freq_scale` in (0, 1]: dynamic power tracks f*V^2 and voltage scales
 * roughly with frequency, so the factor is cubic. Non-finite or
 * non-positive scales clamp to 0 and scales above 1 to 1 — the factor is
 * always a finite value in [0, 1], so a degenerate governor input can
 * never propagate NaN into an energy report.
 */
double dvfs_power_factor(double freq_scale);

/**
 * Power draw of the accelerator complex under `power` at the given busy
 * times, with dynamic power scaled by dvfs_power_factor(freq_scale).
 * Leakage (PowerModel::idle_fraction) does not scale with frequency.
 * Zero-PE or zero-elapsed activities draw leakage only.
 */
double accel_power_w(const Activity& activity, const PowerModel& power,
                     const AreaModel& area, double freq_scale);

}  // namespace accelflow::energy

#endif  // ACCELFLOW_ENERGY_MODEL_H_
