#include "energy/model.h"

namespace accelflow::energy {


EnergyReport compute_energy(const Activity& activity,
                            const PowerModel& power, const AreaModel& area) {
  EnergyReport r;
  if (activity.elapsed == 0) return r;

  // Cores: active power when busy, idle power otherwise.
  const double core_busy_s = sim::to_seconds(activity.core_busy);
  const double core_total_s =
      sim::to_seconds(activity.elapsed) * power.num_cores;
  r.core_j = core_busy_s * power.core_active_w +
             (core_total_s - core_busy_s) * power.core_idle_w;

  r.uncore_j = sim::to_seconds(activity.elapsed) * power.uncore_w;

  // Accelerators: busy time is summed across the 8 PEs; an accelerator's
  // max power corresponds to all PEs active.
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    const double w = power.accel_w(t, area);
    const double busy_s =
        sim::to_seconds(activity.accel_busy[accel::index_of(t)]);
    const double total_s = sim::to_seconds(activity.elapsed) * 8.0;
    const double util = total_s > 0 ? busy_s / total_s : 0.0;
    const double elapsed_s = sim::to_seconds(activity.elapsed);
    r.accel_j += elapsed_s * w * (util + (1.0 - util) * power.idle_fraction);
  }

  // Orchestration structures: dispatchers + DMA engines + queues.
  const sim::TimePs orch_busy = activity.dispatcher_busy + activity.dma_busy;
  const double orch_units = 19.0;  // 9 dispatchers + 10 DMA engines.
  const double orch_busy_s = sim::to_seconds(orch_busy);
  const double orch_total_s =
      sim::to_seconds(activity.elapsed) * orch_units;
  const double orch_util =
      orch_total_s > 0 ? orch_busy_s / orch_total_s : 0.0;
  r.orchestration_j =
      sim::to_seconds(activity.elapsed) * power.orchestration_max_w *
      (orch_util + (1.0 - orch_util) * power.idle_fraction);

  r.total_j = r.core_j + r.uncore_j + r.accel_j + r.orchestration_j;
  r.avg_power_w = r.total_j / sim::to_seconds(activity.elapsed);
  if (r.total_j > 0) {
    r.requests_per_joule =
        static_cast<double>(activity.requests) / r.total_j;
  }
  return r;
}

}  // namespace accelflow::energy
