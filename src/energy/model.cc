#include "energy/model.h"

#include <algorithm>
#include <cmath>

namespace accelflow::energy {

double dvfs_power_factor(double freq_scale) {
  if (!std::isfinite(freq_scale) || freq_scale <= 0) return 0.0;
  const double s = std::min(freq_scale, 1.0);
  return s * s * s;  // f * V^2, with V tracking f.
}

double accel_power_w(const Activity& activity, const PowerModel& power,
                     const AreaModel& area, double freq_scale) {
  const double factor = dvfs_power_factor(freq_scale);
  const double elapsed_s = sim::to_seconds(activity.elapsed);
  double w = 0;
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    const double max_w = power.accel_w(t, area);
    const double busy_s =
        sim::to_seconds(activity.accel_busy[accel::index_of(t)]);
    const double total_s = elapsed_s * activity.pes_per_accel;
    const double util =
        total_s > 0 ? std::min(busy_s / total_s, 1.0) : 0.0;
    // Dynamic power scales with the DVFS factor; leakage does not.
    w += max_w * (util * factor + (1.0 - util) * power.idle_fraction);
  }
  return w;
}

EnergyReport compute_energy(const Activity& activity,
                            const PowerModel& power, const AreaModel& area) {
  EnergyReport r;
  if (activity.elapsed == 0) return r;

  // Cores: active power when busy, idle power otherwise.
  const double core_busy_s = sim::to_seconds(activity.core_busy);
  const double core_total_s =
      sim::to_seconds(activity.elapsed) * power.num_cores;
  r.core_j = core_busy_s * power.core_active_w +
             std::max(core_total_s - core_busy_s, 0.0) * power.core_idle_w;

  r.uncore_j = sim::to_seconds(activity.elapsed) * power.uncore_w;

  // Accelerators: busy time is summed across the PEs; an accelerator's
  // max power corresponds to all PEs active. A zero-PE config has no
  // utilization denominator and contributes leakage only.
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    const double w = power.accel_w(t, area);
    const double busy_s =
        sim::to_seconds(activity.accel_busy[accel::index_of(t)]);
    const double total_s =
        sim::to_seconds(activity.elapsed) * activity.pes_per_accel;
    const double util = total_s > 0 ? busy_s / total_s : 0.0;
    const double elapsed_s = sim::to_seconds(activity.elapsed);
    r.accel_j += elapsed_s * w * (util + (1.0 - util) * power.idle_fraction);
  }

  // Orchestration structures: dispatchers + DMA engines + queues.
  const sim::TimePs orch_busy = activity.dispatcher_busy + activity.dma_busy;
  const double orch_units = 19.0;  // 9 dispatchers + 10 DMA engines.
  const double orch_busy_s = sim::to_seconds(orch_busy);
  const double orch_total_s =
      sim::to_seconds(activity.elapsed) * orch_units;
  const double orch_util =
      orch_total_s > 0 ? orch_busy_s / orch_total_s : 0.0;
  r.orchestration_j =
      sim::to_seconds(activity.elapsed) * power.orchestration_max_w *
      (orch_util + (1.0 - orch_util) * power.idle_fraction);

  r.total_j = r.core_j + r.uncore_j + r.accel_j + r.orchestration_j;
  r.avg_power_w = r.total_j / sim::to_seconds(activity.elapsed);
  if (r.total_j > 0) {
    r.requests_per_joule =
        static_cast<double>(activity.requests) / r.total_j;
  }
  return r;
}

}  // namespace accelflow::energy
