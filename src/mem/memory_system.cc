#include "mem/memory_system.h"

#include <algorithm>

namespace accelflow::mem {

MemorySystem::MemorySystem(sim::Simulator& sim, const MemParams& params,
                           std::uint64_t seed)
    : sim_(sim),
      params_(params),
      clock_(params.core_ghz),
      rng_(seed),
      llc_(sim, params.llc_bandwidth_gbps * 1e9,
           clock_.cycles_to_ps(params.llc_round_trip_cycles)) {
  controllers_.reserve(static_cast<std::size_t>(params.num_controllers));
  for (int i = 0; i < params.num_controllers; ++i) {
    controllers_.emplace_back(sim, params.controller_bandwidth_gbps * 1e9,
                              sim::nanoseconds(params.dram_latency_ns));
  }
}

MemAccess MemorySystem::transfer(std::uint64_t bytes, double llc_hit_prob,
                                 bool is_read) {
  MemAccess out;
  out.llc_hit = rng_.bernoulli(llc_hit_prob);
  if (is_read) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }
  if (out.llc_hit) {
    ++stats_.llc_hits;
    out.complete_at = llc_.transfer(bytes);
    return out;
  }
  ++stats_.llc_misses;
  stats_.bytes_from_dram += bytes;
  // LLC lookup happens first, then the miss goes to the least-busy
  // controller (approximating address interleaving under load).
  const sim::TimePs llc_lookup =
      clock_.cycles_to_ps(params_.llc_round_trip_cycles);
  auto it = std::min_element(
      controllers_.begin(), controllers_.end(),
      [](const sim::Channel& a, const sim::Channel& b) {
        return a.busy_until() < b.busy_until();
      });
  out.complete_at = llc_lookup + it->transfer(bytes);
  return out;
}

MemAccess MemorySystem::read(std::uint64_t bytes, double llc_hit_prob) {
  return transfer(bytes, llc_hit_prob, /*is_read=*/true);
}

MemAccess MemorySystem::write(std::uint64_t bytes, double llc_hit_prob) {
  return transfer(bytes, llc_hit_prob, /*is_read=*/false);
}

sim::TimePs MemorySystem::dependent_access_latency(double llc_hit_prob) {
  const sim::TimePs llc_lat =
      clock_.cycles_to_ps(params_.llc_round_trip_cycles);
  if (rng_.bernoulli(llc_hit_prob)) {
    ++stats_.llc_hits;
    return llc_lat;
  }
  ++stats_.llc_misses;
  return llc_lat + sim::nanoseconds(params_.dram_latency_ns);
}

double MemorySystem::dram_utilization() const {
  double total = 0.0;
  for (const auto& c : controllers_) total += c.utilization();
  return controllers_.empty() ? 0.0 : total / static_cast<double>(controllers_.size());
}

}  // namespace accelflow::mem
