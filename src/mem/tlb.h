#ifndef ACCELFLOW_MEM_TLB_H_
#define ACCELFLOW_MEM_TLB_H_

#include <cstdint>
#include <vector>

#include "mem/address.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

/**
 * @file
 * Set-associative TLB with true-LRU replacement.
 *
 * Used both for core TLBs (Table III: 128-entry 4-way L1, 2048-entry 8-way
 * L2) and for the per-accelerator address translation caches fed by the
 * IOMMU (Section V.3).
 */

namespace accelflow::mem {

/** TLB lookup statistics. */
struct TlbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;

  std::uint64_t misses() const { return lookups - hits; }
  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

/**
 * Set-associative translation cache over (process id, virtual page number).
 *
 * Entries store no physical address: the simulator only needs hit/miss
 * behaviour for timing. True LRU per set via an age counter.
 */
class Tlb {
 public:
  /**
   * @param entries total entry count (must be divisible by ways).
   * @param ways set associativity.
   */
  Tlb(std::size_t entries, std::size_t ways);

  /** Looks up a page; on miss the caller walks and then calls fill(). */
  bool lookup(std::uint32_t process_id, PageNum vpn);

  /** Installs a translation, evicting LRU if the set is full. */
  void fill(std::uint32_t process_id, PageNum vpn);

  /** Convenience: lookup and fill on miss; returns true on hit. */
  bool access(std::uint32_t process_id, PageNum vpn);

  /** Invalidates all entries of a process (e.g. on teardown). */
  void flush_process(std::uint32_t process_id);

  /** Invalidates everything. */
  void flush_all();

  /** Lookup/hit/fill/eviction counters. */
  const TlbStats& stats() const { return stats_; }
  /** Total entry capacity. */
  std::size_t entries() const { return sets_ * ways_; }
  /** Set associativity. */
  std::size_t ways() const { return ways_; }

  /**
   * Attaches the span tracer: misses emit obs::SpanKind::kTlbMiss instants
   * on thread `tid` (timestamped via `sim`). Pass nullptr to detach.
   * Tracing never alters lookup results or timing (see obs/tracer.h).
   */
  void set_tracer(obs::Tracer* tracer, const sim::Simulator* sim,
                  std::uint32_t tid) {
    tracer_ = tracer;
    tracer_sim_ = sim;
    tracer_tid_ = tid;
  }

 private:
  struct Entry {
    bool valid = false;
    std::uint32_t process_id = 0;
    PageNum vpn = 0;
    std::uint64_t last_use = 0;
  };

 public:
  /** Deep copy of the cache contents + counters (DESIGN.md §13). */
  struct Checkpoint {
    std::vector<Entry> entries;  ///< All ways of all sets.
    std::uint64_t tick = 0;      ///< LRU age counter.
    TlbStats stats;              ///< Lookup counters.
  };

  /** Captures cache contents and counters. */
  Checkpoint checkpoint() const { return Checkpoint{entries_, tick_, stats_}; }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    entries_ = c.entries;
    tick_ = c.tick;
    stats_ = c.stats;
  }

 private:

  std::size_t set_index(std::uint32_t process_id, PageNum vpn) const;
  Entry* find(std::uint32_t process_id, PageNum vpn);

  std::size_t sets_;
  std::size_t ways_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  TlbStats stats_;
  obs::Tracer* tracer_ = nullptr;
  const sim::Simulator* tracer_sim_ = nullptr;
  std::uint32_t tracer_tid_ = 0;
};

}  // namespace accelflow::mem

#endif  // ACCELFLOW_MEM_TLB_H_
