#ifndef ACCELFLOW_MEM_MEMORY_SYSTEM_H_
#define ACCELFLOW_MEM_MEMORY_SYSTEM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "sim/time.h"

/**
 * @file
 * Timing model of the shared memory system: distributed LLC plus DDR main
 * memory behind 4 controllers x 4 channels (Table III).
 *
 * The model is probabilistic at the LLC (callers state the expected
 * residency of what they touch) and contention-accurate at the memory
 * controllers: bulk transfers serialize on per-controller channels.
 */

namespace accelflow::mem {

/** Memory-system parameters (defaults follow Table III). */
struct MemParams {
  double core_ghz = 2.4;            ///< Clock for cycle-denominated latencies.
  double llc_round_trip_cycles = 36;///< LLC slice round trip.
  double llc_bandwidth_gbps = 400;  ///< Aggregate LLC read bandwidth.
  double dram_latency_ns = 80;      ///< Row access latency after the LLC miss.
  int num_controllers = 4;
  double controller_bandwidth_gbps = 102.4;
  std::uint64_t dram_bytes = 128ull << 30;
};

/** Completion info for a memory access. */
struct MemAccess {
  sim::TimePs complete_at = 0;
  bool llc_hit = false;
};

/** Running counters. */
struct MemStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t bytes_from_dram = 0;
};

/**
 * The shared LLC + DRAM timing model.
 *
 * Accelerators read/write the LLC coherently (Sapphire-Rapids-style, paper
 * Section IV-A); on a miss the access falls through to a memory controller
 * channel with bandwidth contention.
 */
class MemorySystem {
 public:
  MemorySystem(sim::Simulator& sim, const MemParams& params,
               std::uint64_t seed = 0xA17C);

  /**
   * Models a coherent read of `bytes`.
   *
   * @param llc_hit_prob caller's estimate of LLC residency (e.g. ~0.9 for a
   *        just-produced RPC payload, ~0.3 for a cold overflow area).
   */
  MemAccess read(std::uint64_t bytes, double llc_hit_prob);

  /** Models a coherent write (invalidating private caches). */
  MemAccess write(std::uint64_t bytes, double llc_hit_prob);

  /** Latency of one dependent (pointer-chase) access, e.g. a PTW level. */
  sim::TimePs dependent_access_latency(double llc_hit_prob);

  const MemStats& stats() const { return stats_; }
  const MemParams& params() const { return params_; }

  /** Aggregate DRAM bandwidth utilization in [0,1]. */
  double dram_utilization() const;

  /** Deep copy of channel occupancy + RNG + counters (DESIGN.md §13). */
  struct Checkpoint {
    std::vector<sim::Channel::Checkpoint> controllers;  ///< Per controller.
    sim::Channel::Checkpoint llc;                       ///< LLC channel.
    std::array<std::uint64_t, 4> rng{};                 ///< Hit-draw stream.
    std::size_t next_controller = 0;                    ///< Round-robin cursor.
    MemStats stats;                                     ///< Counters.
  };

  /** Captures channel occupancy, RNG stream, and counters. */
  Checkpoint checkpoint() const {
    Checkpoint c;
    for (const auto& ch : controllers_) c.controllers.push_back(ch.checkpoint());
    c.llc = llc_.checkpoint();
    c.rng = rng_.state();
    c.next_controller = next_controller_;
    c.stats = stats_;
    return c;
  }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
      controllers_[i].restore(c.controllers[i]);
    }
    llc_.restore(c.llc);
    rng_.set_state(c.rng);
    next_controller_ = c.next_controller;
    stats_ = c.stats;
  }

 private:
  MemAccess transfer(std::uint64_t bytes, double llc_hit_prob, bool is_read);

  sim::Simulator& sim_;
  MemParams params_;
  sim::Clock clock_;
  sim::Rng rng_;
  std::vector<sim::Channel> controllers_;
  sim::Channel llc_;
  std::size_t next_controller_ = 0;
  MemStats stats_;
};

}  // namespace accelflow::mem

#endif  // ACCELFLOW_MEM_MEMORY_SYSTEM_H_
