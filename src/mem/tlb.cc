#include "mem/tlb.h"

#include <cassert>

namespace accelflow::mem {

Tlb::Tlb(std::size_t entries, std::size_t ways) : ways_(ways) {
  assert(entries > 0 && ways > 0 && entries % ways == 0);
  sets_ = entries / ways;
  entries_.resize(entries);
}

std::size_t Tlb::set_index(std::uint32_t process_id, PageNum vpn) const {
  // Mix the process id into the index so tenants spread across sets.
  const std::uint64_t h = vpn ^ (static_cast<std::uint64_t>(process_id) * 0x9E3779B9ull);
  return static_cast<std::size_t>(h % sets_);
}

Tlb::Entry* Tlb::find(std::uint32_t process_id, PageNum vpn) {
  const std::size_t base = set_index(process_id, vpn) * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.process_id == process_id && e.vpn == vpn) return &e;
  }
  return nullptr;
}

bool Tlb::lookup(std::uint32_t process_id, PageNum vpn) {
  ++stats_.lookups;
  if (Entry* e = find(process_id, vpn)) {
    e->last_use = ++tick_;
    ++stats_.hits;
    return true;
  }
  if (tracer_ != nullptr) {
    tracer_->instant(obs::Subsys::kMem, obs::SpanKind::kTlbMiss, tracer_tid_,
                     tracer_sim_->now(), vpn);
  }
  return false;
}

void Tlb::fill(std::uint32_t process_id, PageNum vpn) {
  const std::size_t base = set_index(process_id, vpn) * ways_;
  Entry* victim = &entries_[base];
  for (std::size_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.last_use < victim->last_use) victim = &e;
  }
  if (victim->valid) ++stats_.evictions;
  victim->valid = true;
  victim->process_id = process_id;
  victim->vpn = vpn;
  victim->last_use = ++tick_;
  ++stats_.fills;
}

bool Tlb::access(std::uint32_t process_id, PageNum vpn) {
  if (lookup(process_id, vpn)) return true;
  fill(process_id, vpn);
  return false;
}

void Tlb::flush_process(std::uint32_t process_id) {
  for (Entry& e : entries_) {
    if (e.valid && e.process_id == process_id) e.valid = false;
  }
}

void Tlb::flush_all() {
  for (Entry& e : entries_) e.valid = false;
}

}  // namespace accelflow::mem
