#ifndef ACCELFLOW_MEM_IOMMU_H_
#define ACCELFLOW_MEM_IOMMU_H_

#include <array>
#include <cstdint>
#include <functional>

#include "mem/address.h"
#include "mem/memory_system.h"
#include "mem/tlb.h"
#include "obs/tracer.h"
#include "sim/fault_hooks.h"
#include "sim/server.h"
#include "sim/simulator.h"

/**
 * @file
 * IOMMU + radix page-table walker servicing PCIe ATS requests from the
 * accelerators' translation caches (paper Sections IV-A and V.3).
 */

namespace accelflow::mem {

/** Page-walk parameters. */
struct WalkParams {
  int levels = 4;                ///< Radix levels (x86-64 style).
  double ptw_llc_hit_prob = 0.85;///< Page-table entries are warm in the LLC.
  double page_fault_prob = 0.0;  ///< Injected minor-fault probability.
};

/** IOMMU statistics. */
struct IommuStats {
  std::uint64_t translations = 0;
  std::uint64_t walks = 0;
  std::uint64_t faults = 0;
};

/**
 * The IOMMU shared by the accelerators of a chiplet.
 *
 * ATS requests serialize on the walker (a small number of concurrent walk
 * state machines); each walk is `levels` dependent memory accesses. On a
 * page fault the accelerator stops and the CPU is interrupted — the caller
 * receives `faulted = true` and models the OS round trip.
 */
class Iommu {
 public:
  struct Result {
    sim::TimePs complete_at = 0;
    bool faulted = false;
  };

  /**
   * @param concurrent_walkers number of parallel walk state machines.
   */
  Iommu(sim::Simulator& sim, MemorySystem& mem, const WalkParams& params,
        std::size_t concurrent_walkers = 4, std::uint64_t seed = 0x10AA);

  /**
   * Translates one page. The returned time includes queueing on the walker.
   */
  Result translate(std::uint32_t process_id, PageNum vpn);

  /** Translation/walk/fault counters. */
  const IommuStats& stats() const { return stats_; }
  /** The configured walk parameters. */
  const WalkParams& params() const { return params_; }

  /**
   * Attaches the span tracer: every walk emits an obs::SpanKind::kIommuWalk
   * span (request to walk completion, queueing included) and faults emit
   * kPageFault instants. Pass nullptr to detach. Recording never perturbs
   * walk timing (see obs/tracer.h).
   */
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /**
   * Attaches (nullptr: detaches) the fault-injection sink: a translation
   * it flags takes the fault-service path exactly like an organic minor
   * fault (DESIGN.md §14). The sink's draws are separate from this
   * component's own page_fault_prob stream, so attaching it never shifts
   * the organic fault sequence.
   */
  void set_fault_hooks(sim::FaultHooks* hooks) { fault_hooks_ = hooks; }

  /** Deep copy of the walker occupancy + RNG + counters (DESIGN.md §13). */
  struct Checkpoint {
    sim::FifoServer::Checkpoint walkers;        ///< Walk state machines.
    std::array<std::uint64_t, 4> rng{};         ///< Fault/LLC draw stream.
    IommuStats stats;                           ///< Counters.
  };

  /** Captures walker occupancy, RNG stream, and counters. */
  Checkpoint checkpoint() const {
    return Checkpoint{walkers_.checkpoint(), rng_.state(), stats_};
  }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    walkers_.restore(c.walkers);
    rng_.set_state(c.rng);
    stats_ = c.stats;
  }

 private:
  sim::Simulator& sim_;
  MemorySystem& mem_;
  WalkParams params_;
  sim::FifoServer walkers_;
  sim::Rng rng_;
  IommuStats stats_;
  obs::Tracer* tracer_ = nullptr;
  sim::FaultHooks* fault_hooks_ = nullptr;  ///< Null: fault-free run.
};

}  // namespace accelflow::mem

#endif  // ACCELFLOW_MEM_IOMMU_H_
