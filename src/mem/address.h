#ifndef ACCELFLOW_MEM_ADDRESS_H_
#define ACCELFLOW_MEM_ADDRESS_H_

#include <cstdint>

/**
 * @file
 * Virtual/physical address types shared by the memory models.
 *
 * Cores and accelerators share one virtual address space (Intel SVM-style,
 * Section II of the paper); accelerators translate through the IOMMU via
 * PCIe ATS and cache results in per-accelerator TLBs.
 */

namespace accelflow::mem {

using VirtAddr = std::uint64_t;
using PhysAddr = std::uint64_t;
using PageNum = std::uint64_t;

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr unsigned kPageShift = 12;

constexpr PageNum page_of(VirtAddr va) { return va >> kPageShift; }
constexpr VirtAddr page_base(PageNum vpn) { return vpn << kPageShift; }

/** Number of pages touched by a [va, va+bytes) access. */
constexpr std::uint64_t pages_spanned(VirtAddr va, std::uint64_t bytes) {
  if (bytes == 0) return 0;
  return page_of(va + bytes - 1) - page_of(va) + 1;
}

/**
 * Bump allocator handing out virtual buffer addresses for a process.
 *
 * The simulator does not store payload bytes; it only needs realistic,
 * non-overlapping address streams so TLB and page-walk behaviour is
 * meaningful. Each process (tenant) gets a disjoint region.
 */
class AddressSpace {
 public:
  /** @param process_id placed in the top address bits to disjoin tenants. */
  explicit AddressSpace(std::uint32_t process_id)
      : next_(static_cast<VirtAddr>(process_id) << 40 | 0x10000) {}

  /** Allocates a page-aligned buffer of at least `bytes`. */
  VirtAddr allocate(std::uint64_t bytes) {
    const VirtAddr va = next_;
    const std::uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
    next_ += pages * kPageSize;
    return va;
  }

  std::uint64_t bytes_allocated() const { return next_ & ((1ull << 40) - 1); }

 private:
  VirtAddr next_;
};

}  // namespace accelflow::mem

#endif  // ACCELFLOW_MEM_ADDRESS_H_
