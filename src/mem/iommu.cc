#include "mem/iommu.h"

namespace accelflow::mem {

Iommu::Iommu(sim::Simulator& sim, MemorySystem& mem, const WalkParams& params,
             std::size_t concurrent_walkers, std::uint64_t seed)
    : sim_(sim),
      mem_(mem),
      params_(params),
      walkers_(sim, concurrent_walkers),
      rng_(seed) {}

Iommu::Result Iommu::translate(std::uint32_t /*process_id*/, PageNum /*vpn*/) {
  ++stats_.translations;
  ++stats_.walks;
  // A radix walk is `levels` dependent accesses; sample them up front and
  // occupy one walker for the whole duration.
  sim::TimePs walk = 0;
  for (int i = 0; i < params_.levels; ++i) {
    walk += mem_.dependent_access_latency(params_.ptw_llc_hit_prob);
  }
  Result out;
  out.faulted = rng_.bernoulli(params_.page_fault_prob);
  // Injected translation fault: same service path as an organic one.
  if (fault_hooks_ != nullptr && fault_hooks_->iommu_fault(0)) {
    out.faulted = true;
  }
  if (out.faulted) ++stats_.faults;
  out.complete_at = walkers_.submit(walk);
  if (tracer_ != nullptr) {
    tracer_->complete(obs::Subsys::kMem, obs::SpanKind::kIommuWalk,
                      /*tid=*/0, sim_.now(), out.complete_at,
                      static_cast<std::uint64_t>(params_.levels));
    if (out.faulted) {
      tracer_->instant(obs::Subsys::kMem, obs::SpanKind::kPageFault,
                       /*tid=*/0, out.complete_at);
    }
  }
  return out;
}

}  // namespace accelflow::mem
