#ifndef ACCELFLOW_CHECK_INVARIANT_CHECKER_H_
#define ACCELFLOW_CHECK_INVARIANT_CHECKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/machine.h"
#include "core/trace_analysis.h"
#include "core/validation_hooks.h"
#include "obs/span.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

/**
 * @file
 * The runtime invariant checker of the validation subsystem (TESTING.md):
 * a passive observer that attaches to a Machine and continuously asserts
 * conservation invariants while a simulation runs.
 *
 * What it checks, continuously:
 *  - every chain the orchestrator admits terminates exactly once
 *    (completed, rejected or timed out) — no lost or double-finished flows;
 *  - no stage executes out of Trace order: the observed invocation sequence
 *    of each flow must match the static walk_chain() expansion of its
 *    program under the chain's sampled branch flags;
 *  - payload sizes evolve exactly as ChainEnv::transformed_size dictates
 *    between consecutive stages (remote responses excepted: their size is
 *    a fresh draw);
 *  - per-accelerator queue conservation: allocations == releases +
 *    occupancy, occupancy within configured capacity, dispatches ==
 *    recorded input sizes, and overflow_enqueues == overflow_drains +
 *    overflow_occupancy;
 *  - simulated time never moves backwards (via sim::EventProbe) and the
 *    kernel never had to clamp a past-time schedule;
 *  - DMA conservation: every issued transfer's bytes are delivered by its
 *    completion time (bytes-in == bytes-out at quiescence).
 *
 * Violations carry the offending flow-id and an excerpt of the most recent
 * spans from the tracer ring, so a failure names the chain and shows what
 * the machine was doing (see Violation::span_excerpt).
 *
 * Like obs::Tracer, the checker only observes: it never schedules events,
 * draws randomness, or feeds anything back into a model, so a checked run
 * is bit-identical to an unchecked run (asserted by
 * tests/test_determinism_matrix.cc). When no checker is attached the cost
 * is one null-pointer branch per instrumented site.
 */

/** Validation subsystem: invariants, differential fuzzing, analytics. */
namespace accelflow::check {

/** Tuning knobs for the invariant checker. */
struct CheckerConfig {
  /** Violations recorded before further ones are only counted. */
  std::size_t max_violations = 16;
  /** Recent spans included in each violation report. */
  std::size_t excerpt_spans = 12;
  /** Ring capacity of the checker's own flight recorder (used only when
   *  the machine has no tracer attached). */
  std::size_t flight_recorder_spans = 4096;
  /** Keep the full observed stage sequence per flow (the differential
   *  fuzzer compares these across architectures). Off by default: the
   *  sequences grow with the run. */
  bool record_sequences = false;
  /** Run the queue audit on every chain finish (cheap: a few dozen
   *  integer compares) in addition to final_audit(). */
  bool audit_on_finish = true;
};

/** One observed invocation stage of a flow (record_sequences mode). */
struct StageRecord {
  accel::AccelType type{};     ///< Accelerator that (logically) ran it.
  std::uint64_t bytes = 0;     ///< Payload size entering the stage.
  bool on_cpu = false;         ///< Executed on a core (fallback/Non-acc).
};

/** One detected invariant violation. */
struct Violation {
  std::string what;            ///< Human-readable description.
  obs::FlowId flow = 0;        ///< Offending flow; 0 = machine-level.
  sim::TimePs at = 0;          ///< Simulated time of detection.
  std::string span_excerpt;    ///< Recent spans from the tracer ring.
};

/** Aggregate checker activity (for reports and tests). */
struct CheckerStats {
  std::uint64_t chains_started = 0;
  std::uint64_t chains_finished = 0;
  std::uint64_t stages_checked = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t events_observed = 0;
  std::uint64_t audits = 0;
  /** Violations beyond CheckerConfig::max_violations (counted, dropped). */
  std::uint64_t violations_dropped = 0;
};

/**
 * The runtime invariant checker. Attach one instance to one Machine for
 * the duration of one simulation; call final_audit() before the machine is
 * destroyed, then detach().
 */
class InvariantChecker final : public core::ValidationHooks,
                               public sim::EventProbe {
 public:
  explicit InvariantChecker(CheckerConfig config = {});
  ~InvariantChecker() override;

  /**
   * Registers with `machine`: installs itself as the machine's validation
   * observer and the kernel's event probe, and — when the machine has no
   * tracer — attaches its own small flight-recorder ring so violation
   * reports can include recent spans. `lib` provides the trace programs
   * for the static chain expansion; both must outlive the attachment.
   */
  void attach(core::Machine& machine, const core::TraceLibrary& lib);

  /** Unregisters from the machine (safe to call when never attached). */
  void detach();

  // --- core::ValidationHooks -------------------------------------------
  void on_chain_start(const core::ChainContext& ctx,
                      core::AtmAddr first) override;
  void on_chain_finish(const core::ChainContext& ctx,
                       const core::ChainResult& result) override;
  void on_stage(const core::ChainContext& ctx, accel::AccelType type,
                std::uint64_t payload_bytes, bool on_cpu) override;
  void on_dma(std::uint64_t bytes, sim::TimePs complete_at) override;

  // --- sim::EventProbe --------------------------------------------------
  void on_event(sim::TimePs now) override;

  // --- Audits -----------------------------------------------------------

  /** Checks the per-accelerator queue/counter conservation identities. */
  void audit_queues();

  /**
   * End-of-run audit. Runs audit_queues() plus the whole-run identities;
   * when the calendar is empty (a run driven to quiescence) additionally
   * asserts that no chain is still in flight, every dispatched job
   * deposited an output, no DMA bytes remain undelivered, and the kernel
   * never clamped a past-time schedule.
   */
  void final_audit();

  // --- Results ----------------------------------------------------------

  /** True when no violation has been detected. */
  bool ok() const { return violations_.empty(); }

  /** Detected violations, in detection order (capped; see CheckerStats). */
  const std::vector<Violation>& violations() const { return violations_; }

  /** Activity counters. */
  const CheckerStats& stats() const { return stats_; }

  /** Multi-line human-readable report of all violations (empty when ok). */
  std::string report() const;

  /**
   * The observed stage sequence of `flow`, or nullptr when unknown.
   * Only populated with CheckerConfig::record_sequences. A flow restarted
   * by a later request stage accumulates across its restarts.
   */
  const std::vector<StageRecord>* sequence(obs::FlowId flow) const;

  /** All flows with a recorded sequence (record_sequences mode). */
  std::vector<obs::FlowId> recorded_flows() const;

 private:
  /** Per-flow in-flight validation state. */
  struct FlowState {
    /** Expected invocation sequence from the static chain walk. */
    std::vector<accel::AccelType> expected;
    /** remote_before[i]: a network wait precedes invocation i, so the
     *  payload entering i is a fresh response draw (size unchecked). */
    std::vector<bool> remote_before;
    std::size_t next = 0;        ///< Index of the next expected invocation.
    std::uint64_t last_bytes = 0;
    accel::AccelType last_type{};
    core::ChainEnv* env = nullptr;
    sim::TimePs started_at = 0;
  };

 public:
  /**
   * Deep copy of the checker's observation state (DESIGN.md §13), taken
   * and restored by the checkpoint-and-fork sweep engine so an attached
   * checker tracks each forked timeline independently — a restored
   * request-id cursor reuses flow ids, which would otherwise trip the
   * "flow finished twice" invariant. Restoring rewinds violations too:
   * audit (or inspect) a point's violations before running the next.
   * FlowState::env aliases the caller-owned Service objects, which
   * outlive the sweep session, so copying the pointers is sound.
   */
  struct Checkpoint {
    sim::TimePs last_event_time = 0;  ///< Monotonicity watermark.
    std::unordered_map<obs::FlowId, FlowState> active;  ///< In-flight flows.
    std::unordered_set<obs::FlowId> finished;  ///< Terminated flow ids.
    std::unordered_map<obs::FlowId, std::vector<StageRecord>>
        sequences;  ///< record_sequences mode captures.
    std::vector<std::pair<sim::TimePs, std::uint64_t>>
        dma_inflight;  ///< Issued, undelivered transfers.
    std::uint64_t dma_issued_bytes = 0;     ///< DMA bytes issued.
    std::uint64_t dma_delivered_bytes = 0;  ///< DMA bytes delivered.
    std::vector<Violation> violations;      ///< Violations so far.
    CheckerStats stats;                     ///< Activity counters.
  };

  /** Captures the observation state (the attachment is not captured). */
  Checkpoint checkpoint() const {
    return Checkpoint{last_event_time_,     active_,
                      finished_,            sequences_,
                      dma_inflight_,        dma_issued_bytes_,
                      dma_delivered_bytes_, violations_,
                      stats_};
  }

  /** Restores state captured by checkpoint() on this same checker. */
  void restore(const Checkpoint& c) {
    last_event_time_ = c.last_event_time;
    active_ = c.active;
    finished_ = c.finished;
    sequences_ = c.sequences;
    dma_inflight_ = c.dma_inflight;
    dma_issued_bytes_ = c.dma_issued_bytes;
    dma_delivered_bytes_ = c.dma_delivered_bytes;
    violations_ = c.violations;
    stats_ = c.stats;
  }

 private:
  /** Records (or counts, past the cap) one violation. */
  void violate(std::string what, obs::FlowId flow);

  /** Formats the newest spans of the tracer ring for a report. */
  std::string span_excerpt() const;

  /** Pops DMA heap entries delivered by `now`. */
  void retire_dma(sim::TimePs now);

  CheckerConfig config_;
  core::Machine* machine_ = nullptr;
  const core::TraceLibrary* lib_ = nullptr;
  std::unique_ptr<obs::Tracer> own_tracer_;
  bool installed_tracer_ = false;

  sim::TimePs last_event_time_ = 0;
  std::unordered_map<obs::FlowId, FlowState> active_;
  std::unordered_set<obs::FlowId> finished_;
  std::unordered_map<obs::FlowId, std::vector<StageRecord>> sequences_;

  /** Min-heap of (complete_at, bytes) for issued, undelivered transfers. */
  std::vector<std::pair<sim::TimePs, std::uint64_t>> dma_inflight_;
  std::uint64_t dma_issued_bytes_ = 0;
  std::uint64_t dma_delivered_bytes_ = 0;

  std::vector<Violation> violations_;
  CheckerStats stats_;
};

}  // namespace accelflow::check

#endif  // ACCELFLOW_CHECK_INVARIANT_CHECKER_H_
