#include "check/trace_gen.h"

#include <cstddef>

#include "accel/types.h"
#include "core/trace_builder.h"
#include "core/trace_encoding.h"

namespace accelflow::check {
namespace {

accel::AccelType random_accel(sim::Rng& rng) {
  return static_cast<accel::AccelType>(
      rng.next_below(accel::kNumAccelTypes));
}

core::BranchCond random_cond(sim::Rng& rng) {
  return static_cast<core::BranchCond>(rng.next_below(core::kNumBranchConds));
}

/** A (from, to) format pair with from != to. */
std::pair<accel::DataFormat, accel::DataFormat> random_formats(sim::Rng& rng) {
  const auto from =
      static_cast<accel::DataFormat>(rng.next_below(accel::kNumDataFormats));
  auto to =
      static_cast<accel::DataFormat>(rng.next_below(accel::kNumDataFormats));
  if (to == from) {
    to = static_cast<accel::DataFormat>(
        (static_cast<std::size_t>(to) + 1) % accel::kNumDataFormats);
  }
  return {from, to};
}

core::RemoteKind random_remote(sim::Rng& rng, double remote_prob) {
  if (!rng.bernoulli(remote_prob)) return core::RemoteKind::kNone;
  // kNone is 0; draw one of the five real kinds.
  return static_cast<core::RemoteKind>(
      1 + rng.next_below(core::kNumRemoteKinds - 1));
}

std::string segment_name(const std::string& prefix, int i) {
  return prefix + ".s" + std::to_string(i);
}

}  // namespace

GeneratedProgram generate_program(core::TraceLibrary& lib, sim::Rng& rng,
                                  const std::string& name_prefix,
                                  const TraceGenConfig& config) {
  const int segments =
      static_cast<int>(1 + rng.next_below(
                               static_cast<std::uint64_t>(
                                   config.max_segments > 0
                                       ? config.max_segments
                                       : 1)));

  // Build back to front so every divergence / tail target is already
  // registered (the builder supports forward references, but resolving
  // everything eagerly keeps the generated library fully validated).
  for (int seg = segments - 1; seg >= 0; --seg) {
    core::TraceBuilder b(lib);

    // Every segment leads with an invocation: the engine requires the
    // first op of a trace to be an invoke both at chain start and when a
    // tail arms the trace in a TCP wait slot.
    b.seq(random_accel(rng));

    const int extra = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(config.max_extra_ops + 1)));
    for (int i = 0; i < extra; ++i) {
      const double p = rng.next_double();
      if (p < config.branch_prob) {
        // Inline conditional region; keep the body small so it always
        // fits one trace word (branch bodies are atomic across splits).
        const core::BranchCond cond = random_cond(rng);
        const bool with_trans = rng.bernoulli(0.4);
        const accel::AccelType body_accel = random_accel(rng);
        const auto fmts = random_formats(rng);
        b.branch(cond, [&](core::TraceBuilder& then) {
          if (with_trans) then.trans(fmts.first, fmts.second);
          then.seq(body_accel);
        });
      } else if (p < config.branch_prob + config.else_goto_prob &&
                 seg + 1 < segments) {
        // Major divergence: on FALSE, continue at a strictly later
        // segment — targets never point backwards, so programs are
        // acyclic and walk_chain() always terminates.
        const int target =
            seg + 1 +
            static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(segments - seg - 1)));
        b.branch_else_goto(random_cond(rng),
                           segment_name(name_prefix, target));
      } else if (p < config.branch_prob + config.else_goto_prob +
                         config.trans_prob) {
        const auto fmts = random_formats(rng);
        b.trans(fmts.first, fmts.second);
      } else if (p < config.branch_prob + config.else_goto_prob +
                         config.trans_prob + config.notify_prob) {
        b.notify_cont();
      } else {
        b.seq(random_accel(rng));
      }
    }

    if (seg == segments - 1) {
      b.end_notify(segment_name(name_prefix, seg));
    } else {
      b.tail(segment_name(name_prefix, seg),
             segment_name(name_prefix, seg + 1),
             random_remote(rng, config.remote_tail_prob));
    }
  }

  GeneratedProgram out;
  out.name = segment_name(name_prefix, 0);
  out.start = lib.addr_of(out.name);
  out.segments = segments;
  return out;
}

}  // namespace accelflow::check
