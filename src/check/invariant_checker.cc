#include "check/invariant_checker.h"

#include <algorithm>
#include <sstream>

namespace accelflow::check {

using accel::AccelType;

InvariantChecker::InvariantChecker(CheckerConfig config)
    : config_(config) {}

InvariantChecker::~InvariantChecker() = default;

void InvariantChecker::attach(core::Machine& machine,
                              const core::TraceLibrary& lib) {
  machine_ = &machine;
  lib_ = &lib;
  machine.set_checker(this);
  machine.sim().set_probe(this);
  last_event_time_ = machine.sim().now();
  // Run-scoped tracking resets so one checker can audit several sequential
  // runs (e.g. a find_max_load sweep attaches it to every probe run);
  // detected violations and activity counters accumulate across runs.
  active_.clear();
  finished_.clear();
  sequences_.clear();
  dma_inflight_.clear();
  dma_issued_bytes_ = 0;
  dma_delivered_bytes_ = 0;
  if (machine.tracer() == nullptr) {
    // No tracer on this run: attach our own small flight recorder so a
    // violation can still show what the machine was doing. Recording never
    // perturbs scheduling (obs/tracer.h), so the run stays bit-identical.
    own_tracer_ = std::make_unique<obs::Tracer>(config_.flight_recorder_spans);
    machine.set_tracer(own_tracer_.get());
    installed_tracer_ = true;
  }
}

void InvariantChecker::detach() {
  if (machine_ == nullptr) return;
  if (machine_->checker() == this) machine_->set_checker(nullptr);
  if (machine_->sim().probe() == this) machine_->sim().set_probe(nullptr);
  if (installed_tracer_ && machine_->tracer() == own_tracer_.get()) {
    machine_->set_tracer(nullptr);
  }
  installed_tracer_ = false;
  machine_ = nullptr;
  lib_ = nullptr;
}

void InvariantChecker::on_chain_start(const core::ChainContext& ctx,
                                      core::AtmAddr first) {
  ++stats_.chains_started;
  const obs::FlowId flow = obs::flow_id(ctx.request, ctx.chain);
  if (active_.count(flow) > 0) {
    violate("chain started twice while still active", flow);
    return;
  }
  // Sequential stages of one request legitimately reuse its flow id (the
  // chain counter resets per launch): a restart after a finish is a new
  // chain of the same flow, not a duplicate.
  finished_.erase(flow);

  FlowState fs;
  const core::ChainWalk walk = core::walk_chain(*lib_, first, ctx.flags);
  fs.expected = walk.invocations;
  fs.remote_before.reserve(fs.expected.size());
  bool pending_remote = false;
  for (const core::LogicalOp& op : walk.ops) {
    if (op.kind == core::LogicalOp::Kind::kRemoteWait) {
      pending_remote = true;
    } else if (op.kind == core::LogicalOp::Kind::kInvoke) {
      fs.remote_before.push_back(pending_remote);
      pending_remote = false;
    }
  }
  fs.last_bytes = ctx.initial_bytes;
  fs.env = ctx.env;
  fs.started_at = machine_->sim().now();
  active_.emplace(flow, std::move(fs));
}

void InvariantChecker::on_stage(const core::ChainContext& ctx,
                                AccelType type, std::uint64_t payload_bytes,
                                bool on_cpu) {
  ++stats_.stages_checked;
  const obs::FlowId flow = obs::flow_id(ctx.request, ctx.chain);
  const auto it = active_.find(flow);
  if (it == active_.end()) {
    violate(std::string("stage ") + std::string(accel::name_of(type)) +
                " executed for a flow with no active chain",
            flow);
    return;
  }
  FlowState& fs = it->second;
  if (config_.record_sequences) {
    sequences_[flow].push_back(StageRecord{type, payload_bytes, on_cpu});
  }
  if (fs.next >= fs.expected.size()) {
    violate(std::string("stage ") + std::string(accel::name_of(type)) +
                " executed past the end of the expected sequence (" +
                std::to_string(fs.expected.size()) + " invocations)",
            flow);
    return;
  }
  if (type != fs.expected[fs.next]) {
    violate(std::string("out-of-order stage: expected ") +
                std::string(accel::name_of(fs.expected[fs.next])) +
                " at position " + std::to_string(fs.next) + ", got " +
                std::string(accel::name_of(type)),
            flow);
    // Resynchronize on the observed position if possible, so one slip does
    // not cascade into a violation per remaining stage.
    const auto seek = std::find(fs.expected.begin() + static_cast<std::ptrdiff_t>(fs.next),
                                fs.expected.end(), type);
    if (seek != fs.expected.end()) {
      fs.next = static_cast<std::size_t>(seek - fs.expected.begin());
    }
  } else if (!fs.remote_before[fs.next] && fs.env != nullptr) {
    // Payload evolution: between consecutive stages with no network wait,
    // the size entering this stage is exactly the transformed size of the
    // previous stage's input (transformed_size is deterministic).
    const std::uint64_t want =
        fs.next == 0 ? fs.last_bytes
                     : fs.env->transformed_size(fs.last_type, fs.last_bytes);
    if (payload_bytes != want) {
      violate("payload size diverged at stage " + std::to_string(fs.next) +
                  " (" + std::string(accel::name_of(type)) + "): expected " +
                  std::to_string(want) + " bytes, observed " +
                  std::to_string(payload_bytes),
              flow);
    }
  }
  fs.last_type = type;
  fs.last_bytes = payload_bytes;
  ++fs.next;
}

void InvariantChecker::on_chain_finish(const core::ChainContext& ctx,
                                       const core::ChainResult& result) {
  ++stats_.chains_finished;
  const obs::FlowId flow = obs::flow_id(ctx.request, ctx.chain);
  const auto it = active_.find(flow);
  if (it == active_.end()) {
    violate(finished_.count(flow) > 0
                ? std::string("chain finished twice")
                : std::string("chain finished without a recorded start"),
            flow);
    return;
  }
  const FlowState& fs = it->second;
  if (result.ok && fs.next != fs.expected.size()) {
    violate("chain completed OK after " + std::to_string(fs.next) + " of " +
                std::to_string(fs.expected.size()) + " expected invocations",
            flow);
  }
  // A timeout legitimately truncates the sequence: only a prefix ran.
  active_.erase(it);
  finished_.insert(flow);
  retire_dma(machine_->sim().now());
  if (config_.audit_on_finish) audit_queues();
}

void InvariantChecker::on_dma(std::uint64_t bytes, sim::TimePs complete_at) {
  ++stats_.dma_transfers;
  const sim::TimePs now = machine_->sim().now();
  if (complete_at < now || complete_at == sim::kTimeNever) {
    violate("DMA transfer of " + std::to_string(bytes) +
                " bytes completes at an invalid time (" +
                std::to_string(complete_at) + " ps, now " +
                std::to_string(now) + " ps)",
            0);
    return;
  }
  dma_issued_bytes_ += bytes;
  dma_inflight_.emplace_back(complete_at, bytes);
  std::push_heap(dma_inflight_.begin(), dma_inflight_.end(),
                 std::greater<>());
}

void InvariantChecker::on_event(sim::TimePs now) {
  ++stats_.events_observed;
  if (now < last_event_time_) {
    violate("event time moved backwards: " + std::to_string(now) +
                " ps after " + std::to_string(last_event_time_) + " ps",
            0);
  }
  last_event_time_ = now;
}

void InvariantChecker::retire_dma(sim::TimePs now) {
  while (!dma_inflight_.empty() && dma_inflight_.front().first <= now) {
    dma_delivered_bytes_ += dma_inflight_.front().second;
    std::pop_heap(dma_inflight_.begin(), dma_inflight_.end(),
                  std::greater<>());
    dma_inflight_.pop_back();
  }
}

void InvariantChecker::audit_queues() {
  ++stats_.audits;
  for (const AccelType t : accel::kAllAccelTypes) {
    const accel::Accelerator& acc = machine_->accel(t);
    const std::string name(accel::name_of(t));
    const accel::QueueStats& in = acc.input_stats();
    if (in.allocations != in.releases + acc.input_occupancy()) {
      violate(name + " input queue leaks entries: " +
                  std::to_string(in.allocations) + " allocated != " +
                  std::to_string(in.releases) + " released + " +
                  std::to_string(acc.input_occupancy()) + " resident",
              0);
    }
    if (acc.input_occupancy() > acc.params().input_queue_entries) {
      violate(name + " input queue over capacity", 0);
    }
    const accel::QueueStats& out = acc.output_stats();
    if (out.allocations != out.releases + acc.output_occupancy()) {
      violate(name + " output queue leaks entries", 0);
    }
    if (acc.output_occupancy() > acc.params().output_queue_entries) {
      violate(name + " output queue over capacity", 0);
    }
    const accel::AccelStats& st = acc.stats();
    if (st.overflow_enqueues !=
        st.overflow_drains + acc.overflow_occupancy()) {
      violate(name + " overflow accounting broken: " +
                  std::to_string(st.overflow_enqueues) + " enqueued != " +
                  std::to_string(st.overflow_drains) + " drained + " +
                  std::to_string(acc.overflow_occupancy()) + " resident",
              0);
    }
    if (acc.overflow_occupancy() > acc.params().overflow_capacity) {
      violate(name + " overflow area over capacity", 0);
    }
    // jobs and input_bytes are both recorded at dispatch; outputs trail
    // while PEs are busy but can never exceed dispatches.
    if (st.jobs != st.input_bytes.count()) {
      violate(name + " dispatch accounting broken: jobs != recorded inputs",
              0);
    }
    if (st.output_bytes.count() > st.jobs) {
      violate(name + " produced more outputs than dispatched jobs", 0);
    }
  }
}

void InvariantChecker::final_audit() {
  audit_queues();
  const sim::TimePs now = machine_->sim().now();
  retire_dma(now);
  if (machine_->sim().kernel_stats().clamped_past != 0) {
    violate("kernel clamped " +
                std::to_string(machine_->sim().kernel_stats().clamped_past) +
                " past-time schedules (model scheduled into the past)",
            0);
  }
  if (machine_->sim().pending_events() != 0) {
    // The run stopped at a horizon with work in flight: the zero-residual
    // identities below only hold at quiescence.
    return;
  }
  for (const auto& [flow, fs] : active_) {
    violate("chain never finished (stalled after " +
                std::to_string(fs.next) + " of " +
                std::to_string(fs.expected.size()) + " invocations)",
            flow);
  }
  if (!dma_inflight_.empty() || dma_issued_bytes_ != dma_delivered_bytes_) {
    violate("DMA bytes not conserved at quiescence: " +
                std::to_string(dma_issued_bytes_) + " issued, " +
                std::to_string(dma_delivered_bytes_) + " delivered",
            0);
  }
  for (const AccelType t : accel::kAllAccelTypes) {
    const accel::Accelerator& acc = machine_->accel(t);
    const accel::AccelStats& st = acc.stats();
    // Fault-injected runs kill some dispatched jobs before they deposit
    // output (DESIGN.md §14); every such loss must be explicitly counted,
    // never silent — the identity covers fault-free runs as a special case.
    if (st.jobs != st.output_bytes.count() + st.killed_jobs) {
      violate(std::string(accel::name_of(t)) +
                  " lost jobs at quiescence: " + std::to_string(st.jobs) +
                  " dispatched, " +
                  std::to_string(st.output_bytes.count()) + " deposited, " +
                  std::to_string(st.killed_jobs) + " killed by faults",
              0);
    }
    if (acc.input_occupancy() != 0 || acc.output_occupancy() != 0 ||
        acc.overflow_occupancy() != 0) {
      violate(std::string(accel::name_of(t)) +
                  " still holds queue entries at quiescence",
              0);
    }
  }
}

void InvariantChecker::violate(std::string what, obs::FlowId flow) {
  if (violations_.size() >= config_.max_violations) {
    ++stats_.violations_dropped;
    return;
  }
  Violation v;
  v.what = std::move(what);
  v.flow = flow;
  v.at = machine_ != nullptr ? machine_->sim().now() : 0;
  v.span_excerpt = span_excerpt();
  violations_.push_back(std::move(v));
}

std::string InvariantChecker::span_excerpt() const {
  if (machine_ == nullptr || machine_->tracer() == nullptr) return {};
  const obs::Tracer& tr = *machine_->tracer();
  const std::size_t want = config_.excerpt_spans;
  const std::size_t skip = tr.size() > want ? tr.size() - want : 0;
  std::ostringstream os;
  std::size_t i = 0;
  tr.for_each([&](const obs::SpanEvent& ev) {
    if (i++ < skip) return;
    os << "    [" << sim::to_microseconds(ev.ts) << "us] "
       << name_of(ev.subsys) << "/" << name_of(ev.kind);
    if (ev.dur != 0) os << " dur=" << sim::to_microseconds(ev.dur) << "us";
    if (ev.flow != 0) os << " flow=" << ev.flow;
    if (ev.arg != 0) os << " arg=" << ev.arg;
    os << "\n";
  });
  return os.str();
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  os << "InvariantChecker: " << violations_.size() << " violation(s) ("
     << stats_.violations_dropped << " more dropped), "
     << stats_.chains_started << " chains started, "
     << stats_.chains_finished << " finished, " << stats_.stages_checked
     << " stages checked, " << stats_.dma_transfers << " DMA transfers, "
     << stats_.audits << " queue audits\n";
  for (const Violation& v : violations_) {
    os << "  VIOLATION";
    if (v.flow != 0) {
      os << " [request " << (v.flow >> 8) << " chain " << (v.flow & 0xFF)
         << "]";
    }
    os << " at t=" << sim::to_microseconds(v.at) << "us: " << v.what << "\n";
    if (!v.span_excerpt.empty()) {
      os << "  recent spans:\n" << v.span_excerpt;
    }
  }
  return os.str();
}

const std::vector<StageRecord>* InvariantChecker::sequence(
    obs::FlowId flow) const {
  const auto it = sequences_.find(flow);
  return it == sequences_.end() ? nullptr : &it->second;
}

std::vector<obs::FlowId> InvariantChecker::recorded_flows() const {
  std::vector<obs::FlowId> flows;
  flows.reserve(sequences_.size());
  for (const auto& [flow, seq] : sequences_) flows.push_back(flow);
  std::sort(flows.begin(), flows.end());
  return flows;
}

}  // namespace accelflow::check
