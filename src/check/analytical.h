#ifndef ACCELFLOW_CHECK_ANALYTICAL_H_
#define ACCELFLOW_CHECK_ANALYTICAL_H_

#include <cstdint>
#include <string>

/**
 * @file
 * Analytical cross-checks (TESTING.md): closed-form queueing-theory
 * predictions validated against the simulated accelerator model.
 *
 * A single accelerator with k processing elements fed by an open-loop
 * Poisson arrival process is, by construction, an M/M/k queue when the
 * per-job compute cost is exponential and an M/D/1 queue when the cost is
 * deterministic (with transfer latencies zeroed out and payloads small
 * enough to skip the memory path). Queueing theory then gives the exact
 * steady-state mean waiting time and server utilization:
 *
 *   M/M/k:  Wq = C(k, a) / (k*mu - lambda),   a = lambda/mu, rho = a/k
 *           with C the Erlang-C probability of queueing;
 *   M/D/1:  Wq = rho * S / (2 * (1 - rho)),   S the fixed service time.
 *
 * The simulator measures Wq directly (AccelStats::input_queue_delay
 * records queue-entry to PE-dispatch time) and rho as busy-time over
 * k * elapsed. run_analytical_check() drives the standalone accelerator
 * model to steady state and compares both against the closed forms. This
 * anchors the event kernel, queue, dispatch and PE-timing code to ground
 * truth that was not derived from the simulator itself.
 */

namespace accelflow::check {

/** Erlang-C: probability an arriving job waits in an M/M/k queue.
 *  `a` = offered load lambda/mu (in Erlangs); requires a < k. */
double erlang_c(int k, double a);

/** Mean waiting time (seconds) in M/M/k. lambda, mu in jobs/second. */
double mmk_mean_wait(int k, double lambda, double mu);

/** Mean waiting time (seconds) in M/D/1 with fixed service time s. */
double md1_mean_wait(double lambda, double service_s);

/** One open-loop single-accelerator validation scenario. */
struct AnalyticalConfig {
  int pes = 1;                   ///< k servers.
  double utilization = 0.6;      ///< Target rho = lambda / (k * mu).
  double mean_service_us = 2.0;  ///< 1/mu.
  bool deterministic = false;    ///< M/D/1 (requires pes == 1) vs M/M/k.
  std::uint64_t jobs = 150000;   ///< Arrivals to simulate.
  std::uint64_t seed = 0x5EED;   ///< Arrival/service RNG seed.
  double tolerance = 0.05;       ///< Relative error allowed on Wq and rho.
};

/** Measured-vs-predicted outcome of one scenario. */
struct AnalyticalResult {
  bool passed = false;           ///< Both errors within tolerance.
  double predicted_wait_us = 0;  ///< Closed-form Wq.
  double simulated_wait_us = 0;  ///< Mean of input_queue_delay.
  double wait_error = 0;         ///< |sim - predicted| / predicted.
  double predicted_util = 0;     ///< rho.
  double simulated_util = 0;     ///< pe_busy / (k * elapsed).
  double util_error = 0;         ///< |sim - predicted| / predicted.
  std::uint64_t jobs_measured = 0;  ///< Completed jobs in the sample.
  std::string detail;            ///< Failure description (empty on pass).
};

/**
 * Simulates `config` on a standalone Accelerator (no orchestrator, no
 * DMA: zero transfer latency, zero-byte payloads, speedup 1) and compares
 * the measured mean queueing delay and utilization with the closed forms.
 * Deterministic for a fixed config.
 */
AnalyticalResult run_analytical_check(const AnalyticalConfig& config);

}  // namespace accelflow::check

#endif  // ACCELFLOW_CHECK_ANALYTICAL_H_
