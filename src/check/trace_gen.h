#ifndef ACCELFLOW_CHECK_TRACE_GEN_H_
#define ACCELFLOW_CHECK_TRACE_GEN_H_

#include <string>

#include "core/trace_library.h"
#include "sim/random.h"

/**
 * @file
 * Deterministic random trace-program generation for the differential
 * fuzzer (tools/fuzz_traces, TESTING.md).
 *
 * From a seeded sim::Rng, generate_program() emits a random — but always
 * well-formed — Trace DAG through the public TraceBuilder API: linear
 * invocation runs over all nine accelerator types, conditional regions,
 * major-divergence branches (BR_ATM), data-format transforms, mid-chain
 * notifies, and ATM tail pointers with every RemoteKind. Programs are
 * acyclic by construction (divergence targets only later segments) so
 * walk_chain() terminates, and every segment begins with an invocation,
 * matching what the engine requires of a trace armed in a wait slot.
 *
 * The same (seed, config) pair always yields the same program, so any
 * failure a fuzzing campaign finds is reproducible from its seed alone.
 */

namespace accelflow::check {

/** Shape knobs for random program generation. */
struct TraceGenConfig {
  int max_segments = 3;          ///< ATM-chained subtrace chain length.
  int max_extra_ops = 5;         ///< Ops after the mandatory leading invoke.
  double branch_prob = 0.30;     ///< Inline conditional region.
  double else_goto_prob = 0.20;  ///< Major-divergence branch (needs a
                                 ///< later segment to target).
  double trans_prob = 0.25;      ///< Data-format transform.
  double notify_prob = 0.10;     ///< NOTIFY_CONT.
  double remote_tail_prob = 0.5; ///< Tail edges that wait on the network.
};

/** A generated program, registered in the library it was built into. */
struct GeneratedProgram {
  std::string name;          ///< Name of the entry trace.
  core::AtmAddr start = 0;   ///< ATM address to run_chain() from.
  int segments = 0;          ///< Registered (top-level) segment count.
};

/**
 * Generates one random trace program into `lib`, registering its segments
 * as `<name_prefix>.s0` ... `<name_prefix>.s<n-1>` (s0 is the entry).
 * All randomness is drawn from `rng`; identical seeds yield identical
 * programs bit for bit.
 */
GeneratedProgram generate_program(core::TraceLibrary& lib, sim::Rng& rng,
                                  const std::string& name_prefix,
                                  const TraceGenConfig& config = {});

}  // namespace accelflow::check

#endif  // ACCELFLOW_CHECK_TRACE_GEN_H_
