#ifndef ACCELFLOW_CHECK_DIFFERENTIAL_H_
#define ACCELFLOW_CHECK_DIFFERENTIAL_H_

#include <cstdint>
#include <string>

/**
 * @file
 * The deterministic differential trace fuzzer (TESTING.md): one *case* is
 * a seeded random scenario — a set of random trace programs
 * (check/trace_gen.h), a machine configuration (sometimes with
 * deliberately tiny queues to force overflow and CPU-fallback paths), and
 * a handful of concurrent chains with random flags and payload sizes.
 *
 * The case runs twice on fresh machines: once under the full AccelFlow
 * engine and once under the CPU-Centric baseline. Both executions model
 * wildly different coordination mechanics but must agree on the *logical*
 * outcome, because both follow the same trace programs under the same
 * sampled branch flags with the same deterministic cost environment:
 *
 *  - the same per-chain completion status (ok / timed out);
 *  - the same invocation sequence per chain — accelerator types in Trace
 *    order with the same payload size entering every stage;
 *  - the same logical-op counters (invocations, branches, transforms,
 *    mid-chain notifies, remote calls);
 *  - zero invariant-checker violations on either architecture, including
 *    each run's final quiescence audit.
 *
 * Everything derives from the case seed, so a reported failure replays
 * exactly with `tools/fuzz_traces --seed N`.
 */

namespace accelflow::check {

/** Shape knobs for one differential case. */
struct DiffOptions {
  int max_programs = 2;        ///< Random trace programs per case.
  int max_chains = 4;          ///< Concurrent chains per case.
  double tiny_queue_prob = 0.3;  ///< Chance of a 2-entry-queue machine.
  /** Chance (per remote kind) of a latency beyond the 10 ms response
   *  timeout, exercising the timeout path on both architectures. */
  double timeout_prob = 0.08;
};

/** Outcome of one differential case. */
struct DiffCaseResult {
  bool passed = false;  ///< Architectures agreed, no violations.
  /** Human-readable divergence/violation description (empty on pass). */
  std::string detail;
  int programs = 0;     ///< Trace programs generated for the case.
  int chains = 0;       ///< Concurrent chains run.
  std::uint64_t stages_checked = 0;  ///< From the AccelFlow run's checker.
  bool tiny_queues = false;  ///< Ran on the 2-entry-queue machine.
  bool had_timeout = false;  ///< Some chain exercised the timeout path.
};

/**
 * Runs one differential case derived entirely from `seed`. Deterministic:
 * the same (seed, options) pair always produces the same result.
 */
DiffCaseResult run_differential_case(std::uint64_t seed,
                                     const DiffOptions& options = {});

}  // namespace accelflow::check

#endif  // ACCELFLOW_CHECK_DIFFERENTIAL_H_
