#include "check/differential.h"

#include <array>
#include <memory>
#include <sstream>
#include <vector>

#include "accel/types.h"
#include "check/invariant_checker.h"
#include "check/trace_gen.h"
#include "core/chain.h"
#include "core/machine.h"
#include "core/orchestrator.h"
#include "core/trace_library.h"
#include "obs/span.h"
#include "sim/random.h"
#include "sim/time.h"

namespace accelflow::check {
namespace {

using accel::AccelType;
using core::RemoteKind;

/**
 * Deterministic chain environment: costs, sizes and remote behaviour are
 * pure functions of their inputs (plus a per-case remote table), so the
 * AccelFlow and CPU-Centric executions of the same chain see *identical*
 * values no matter how often or in which order they query the env.
 */
class FuzzEnv final : public core::ChainEnv {
 public:
  struct RemoteModel {
    sim::TimePs latency = 0;
    std::uint64_t response_bytes = 1024;
  };

  explicit FuzzEnv(std::array<RemoteModel, core::kNumRemoteKinds> remotes)
      : remotes_(remotes) {}

  sim::TimePs op_cpu_cost(core::ChainContext&, AccelType type,
                          std::uint64_t payload_bytes) override {
    const auto idx = static_cast<std::uint64_t>(accel::index_of(type));
    return sim::nanoseconds(
        static_cast<double>(300 + 90 * idx + payload_bytes / 8));
  }

  std::uint64_t transformed_size(AccelType type,
                                 std::uint64_t bytes) override {
    std::uint64_t out = bytes;
    switch (type) {
      case AccelType::kSer:
        out = bytes * 9 / 8 + 8;
        break;
      case AccelType::kDser:
        out = bytes * 7 / 8;
        break;
      case AccelType::kCmp:
        out = bytes * 3 / 8 + 4;
        break;
      case AccelType::kDcmp:
        out = bytes * 5 / 2;
        break;
      case AccelType::kLdb:
        out = bytes / 2 + 32;
        break;
      default:  // kTcp, kEncr, kDecr, kRpc preserve the size.
        break;
    }
    if (out < 16) out = 16;
    if (out > (1u << 22)) out = 1u << 22;
    return out;
  }

  sim::TimePs remote_latency(core::ChainContext&, RemoteKind kind) override {
    return remotes_[static_cast<std::size_t>(kind)].latency;
  }

  std::uint64_t response_size(core::ChainContext&, RemoteKind kind) override {
    return remotes_[static_cast<std::size_t>(kind)].response_bytes;
  }

 private:
  std::array<RemoteModel, core::kNumRemoteKinds> remotes_;
};

/** Everything one chain needs, fixed before either architecture runs. */
struct ChainSpec {
  core::AtmAddr start = 0;
  accel::PayloadFlags flags;
  std::uint64_t initial_bytes = 1024;
  accel::DataFormat format = accel::DataFormat::kProtoWire;
  accel::TenantId tenant = 0;
  int core = 0;
  std::uint64_t rng_seed = 0;
  sim::TimePs start_at = 0;
};

/** What one architecture produced for one chain. */
struct FlowOutcome {
  bool done = false;
  core::ChainResult result;
  std::uint32_t accel_invocations = 0;
  std::uint32_t branches = 0;
  std::uint32_t transforms = 0;
  std::uint32_t mid_notifies = 0;
  std::uint32_t remote_calls = 0;
  std::vector<StageRecord> sequence;
};

struct ArchOutcome {
  std::vector<FlowOutcome> flows;
  bool checker_ok = false;
  std::string checker_report;
  CheckerStats checker_stats;
};

ArchOutcome run_arch(core::OrchKind kind, const core::MachineConfig& mc,
                     const core::TraceLibrary& lib,
                     const std::vector<ChainSpec>& specs,
                     core::ChainEnv& env) {
  ArchOutcome out;
  out.flows.resize(specs.size());

  core::Machine machine(mc);
  machine.load_traces(lib);

  CheckerConfig cc;
  cc.record_sequences = true;
  InvariantChecker checker(cc);
  checker.attach(machine, lib);

  auto orch = core::make_orchestrator(kind, machine, lib);

  std::vector<std::unique_ptr<core::ChainContext>> ctxs;
  ctxs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ChainSpec& spec = specs[i];
    auto ctx = std::make_unique<core::ChainContext>();
    ctx->request = static_cast<accel::RequestId>(i + 1);
    ctx->chain = 0;
    ctx->tenant = spec.tenant;
    ctx->core = spec.core;
    ctx->flags = spec.flags;
    ctx->initial_bytes = spec.initial_bytes;
    ctx->initial_format = spec.format;
    ctx->buffer_va = static_cast<mem::VirtAddr>((i + 1)) << 20;
    ctx->env = &env;
    ctx->rng.reseed(spec.rng_seed);
    FlowOutcome* flow = &out.flows[i];
    ctx->on_done = [flow](const core::ChainResult& r) {
      flow->done = true;
      flow->result = r;
    };
    core::ChainContext* raw = ctx.get();
    core::Orchestrator* o = orch.get();
    machine.sim().schedule_at(spec.start_at, [o, raw, start = spec.start] {
      o->run_chain(raw, start);
    });
    ctxs.push_back(std::move(ctx));
  }

  machine.sim().run();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    FlowOutcome& flow = out.flows[i];
    const auto& ctx = *ctxs[i];
    flow.accel_invocations = ctx.accel_invocations;
    flow.branches = ctx.branches;
    flow.transforms = ctx.transforms;
    flow.mid_notifies = ctx.mid_notifies;
    flow.remote_calls = ctx.remote_calls;
    const auto* seq =
        checker.sequence(obs::flow_id(ctx.request, ctx.chain));
    if (seq != nullptr) flow.sequence = *seq;
  }

  checker.final_audit();
  out.checker_ok = checker.ok();
  out.checker_report = checker.report();
  out.checker_stats = checker.stats();
  checker.detach();
  return out;
}

const char* arch_name(core::OrchKind k) {
  return k == core::OrchKind::kAccelFlow ? "AccelFlow" : "CPU-Centric";
}

void describe_flow(std::ostringstream& os, const FlowOutcome& f) {
  os << "done=" << f.done << " ok=" << f.result.ok
     << " timeout=" << f.result.timeout
     << " cpu_fallback=" << f.result.cpu_fallback
     << " inv=" << f.accel_invocations << " br=" << f.branches
     << " tr=" << f.transforms << " nt=" << f.mid_notifies
     << " rc=" << f.remote_calls << " seq=[";
  for (std::size_t i = 0; i < f.sequence.size(); ++i) {
    if (i != 0) os << " ";
    os << accel::name_of(f.sequence[i].type) << ":"
       << f.sequence[i].bytes;
  }
  os << "]";
}

}  // namespace

DiffCaseResult run_differential_case(std::uint64_t seed,
                                     const DiffOptions& options) {
  DiffCaseResult result;
  sim::Rng rng(seed);

  // --- Scenario generation (everything below derives from `seed`). ------
  core::TraceLibrary lib;
  const int programs = static_cast<int>(
      1 + rng.next_below(static_cast<std::uint64_t>(
              options.max_programs > 0 ? options.max_programs : 1)));
  std::vector<GeneratedProgram> progs;
  progs.reserve(static_cast<std::size_t>(programs));
  for (int p = 0; p < programs; ++p) {
    progs.push_back(
        generate_program(lib, rng, "fz" + std::to_string(p)));
  }
  result.programs = programs;

  core::MachineConfig mc;
  mc.seed = rng.next_u64();
  result.tiny_queues = rng.bernoulli(options.tiny_queue_prob);
  if (result.tiny_queues) {
    // Starve the ensemble: 2-entry queues, 2-entry overflow areas and a
    // single PE per accelerator force the overflow and CPU-fallback paths
    // the full-size configuration rarely exercises.
    mc.accel_queue_entries = 2;
    mc.overflow_capacity = 2;
    mc.pes_per_accel = 1;
  }

  std::array<FuzzEnv::RemoteModel, core::kNumRemoteKinds> remotes{};
  for (std::size_t k = 1; k < core::kNumRemoteKinds; ++k) {
    if (rng.bernoulli(options.timeout_prob)) {
      // Beyond the 10 ms response timeout of both architectures.
      remotes[k].latency = sim::milliseconds(12);
      result.had_timeout = true;
    } else {
      remotes[k].latency = sim::microseconds(rng.uniform(2.0, 40.0));
    }
    remotes[k].response_bytes = 64 + rng.next_below(8192);
  }
  FuzzEnv env(remotes);

  const int chains = static_cast<int>(
      1 + rng.next_below(static_cast<std::uint64_t>(
              options.max_chains > 0 ? options.max_chains : 1)));
  std::vector<ChainSpec> specs;
  specs.reserve(static_cast<std::size_t>(chains));
  for (int i = 0; i < chains; ++i) {
    ChainSpec s;
    const auto& prog = progs[rng.next_below(progs.size())];
    s.start = prog.start;
    s.flags.compressed = rng.bernoulli(0.5);
    s.flags.hit = rng.bernoulli(0.5);
    s.flags.found = rng.bernoulli(0.5);
    s.flags.exception = rng.bernoulli(0.2);
    s.flags.c_compressed = rng.bernoulli(0.5);
    s.initial_bytes = 64 + rng.next_below(32 * 1024);
    s.format = static_cast<accel::DataFormat>(
        rng.next_below(accel::kNumDataFormats));
    s.tenant = static_cast<accel::TenantId>(rng.next_below(3));
    s.core = static_cast<int>(rng.next_below(8));
    s.rng_seed = rng.next_u64();
    s.start_at = sim::microseconds(static_cast<double>(5 * i));
    specs.push_back(s);
  }
  result.chains = chains;

  // --- Dual execution ----------------------------------------------------
  const ArchOutcome af =
      run_arch(core::OrchKind::kAccelFlow, mc, lib, specs, env);
  const ArchOutcome cpu =
      run_arch(core::OrchKind::kCpuCentric, mc, lib, specs, env);
  result.stages_checked = af.checker_stats.stages_checked;

  // --- Comparison --------------------------------------------------------
  std::ostringstream os;
  bool failed = false;
  auto fail = [&](const std::string& what) {
    failed = true;
    os << "seed " << seed << ": " << what << "\n";
  };

  for (const auto* arch : {&af, &cpu}) {
    if (!arch->checker_ok) {
      fail(std::string(arch_name(arch == &af
                                     ? core::OrchKind::kAccelFlow
                                     : core::OrchKind::kCpuCentric)) +
           " invariant violations:\n" + arch->checker_report);
    }
  }

  for (int i = 0; i < chains; ++i) {
    const FlowOutcome& a = af.flows[static_cast<std::size_t>(i)];
    const FlowOutcome& c = cpu.flows[static_cast<std::size_t>(i)];
    const std::string tag = "chain " + std::to_string(i);
    if (!a.done || !c.done) {
      fail(tag + " did not complete (AccelFlow=" +
           std::to_string(a.done) + " CPU-Centric=" +
           std::to_string(c.done) + ")");
      continue;
    }
    const bool outcomes_match = a.result.ok == c.result.ok &&
                                a.result.timeout == c.result.timeout;
    // A timed-out chain is truncated at a point that may legitimately
    // differ in *physical* time between architectures, so only the
    // outcome flags are compared for those.
    const bool compare_logic =
        outcomes_match && a.result.ok && !a.result.timeout;
    bool diverged = !outcomes_match;
    if (compare_logic) {
      diverged = a.accel_invocations != c.accel_invocations ||
                 a.branches != c.branches ||
                 a.transforms != c.transforms ||
                 a.mid_notifies != c.mid_notifies ||
                 a.remote_calls != c.remote_calls ||
                 a.sequence.size() != c.sequence.size();
      if (!diverged) {
        for (std::size_t j = 0; j < a.sequence.size(); ++j) {
          // on_cpu is *expected* to differ (fallback vs. always-CPU);
          // the logical stage and its payload size must not.
          if (a.sequence[j].type != c.sequence[j].type ||
              a.sequence[j].bytes != c.sequence[j].bytes) {
            diverged = true;
            break;
          }
        }
      }
    }
    if (diverged) {
      os << "seed " << seed << ": " << tag << " diverged\n  AccelFlow:   ";
      describe_flow(os, a);
      os << "\n  CPU-Centric: ";
      describe_flow(os, c);
      os << "\n";
      failed = true;
    }
  }

  result.passed = !failed;
  result.detail = os.str();
  return result;
}

}  // namespace accelflow::check
