#include "check/analytical.h"

#include <cmath>
#include <memory>
#include <sstream>

#include "accel/accelerator.h"
#include "mem/iommu.h"
#include "mem/memory_system.h"
#include "noc/interconnect.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace accelflow::check {

double erlang_c(int k, double a) {
  // Erlang-B by its numerically stable recursion, then convert:
  //   B(0) = 1,  B(n) = a B(n-1) / (n + a B(n-1))
  //   C(k) = k B(k) / (k - a (1 - B(k)))
  double b = 1.0;
  for (int n = 1; n <= k; ++n) {
    b = a * b / (static_cast<double>(n) + a * b);
  }
  return static_cast<double>(k) * b /
         (static_cast<double>(k) - a * (1.0 - b));
}

double mmk_mean_wait(int k, double lambda, double mu) {
  const double a = lambda / mu;
  return erlang_c(k, a) / (static_cast<double>(k) * mu - lambda);
}

double md1_mean_wait(double lambda, double service_s) {
  const double rho = lambda * service_s;
  return rho * service_s / (2.0 * (1.0 - rho));
}

namespace {

/** Frees every deposited output immediately: the PE service time is the
 *  whole story, as the closed forms assume. */
class ImmediateRelease final : public accel::OutputHandler {
 public:
  void handle_output(accel::Accelerator& acc, accel::SlotId slot) override {
    acc.release_output(slot);
  }
};

/** Open-loop Poisson source feeding one accelerator. */
class PoissonDriver {
 public:
  PoissonDriver(sim::Simulator& sim, accel::Accelerator& acc,
                const AnalyticalConfig& config, double interarrival_us)
      : sim_(sim),
        acc_(acc),
        config_(config),
        interarrival_us_(interarrival_us),
        rng_(config.seed),
        remaining_(config.jobs) {}

  void start() { arrive(); }

  std::uint64_t drops() const { return drops_; }
  sim::TimePs last_arrival() const { return last_arrival_; }

 private:
  void arrive() {
    last_arrival_ = sim_.now();
    accel::QueueEntry e;
    e.request = static_cast<accel::RequestId>(config_.jobs - remaining_);
    e.tenant = 1;
    e.payload.size_bytes = 0;  // Skip transfer and memory paths entirely.
    e.cpu_cost = config_.deterministic
                     ? sim::microseconds(config_.mean_service_us)
                     : sim::microseconds(
                           rng_.exponential(config_.mean_service_us));
    e.ready = false;
    e.pending_inputs = 1;
    const accel::SlotId slot = acc_.try_enqueue(std::move(e));
    if (slot == accel::kInvalidSlot) {
      ++drops_;  // Statistically impossible with a sane queue; reported.
    } else {
      acc_.deliver_data(slot);
    }
    if (--remaining_ > 0) {
      sim_.schedule_after(
          sim::microseconds(rng_.exponential(interarrival_us_)),
          [this] { arrive(); });
    }
  }

  sim::Simulator& sim_;
  accel::Accelerator& acc_;
  const AnalyticalConfig& config_;
  double interarrival_us_;
  sim::Rng rng_;
  std::uint64_t remaining_;
  std::uint64_t drops_ = 0;
  sim::TimePs last_arrival_ = 0;
};

}  // namespace

AnalyticalResult run_analytical_check(const AnalyticalConfig& config) {
  AnalyticalResult out;

  // Rates. rho = lambda / (k mu), all in microsecond units here.
  const double mu = 1.0 / config.mean_service_us;       // Jobs/us/server.
  const double lambda =
      config.utilization * static_cast<double>(config.pes) * mu;
  const double interarrival_us = 1.0 / lambda;

  // Nominal prediction; refined below against the *realized* rates once
  // the run is over.
  out.predicted_util = config.utilization;
  out.predicted_wait_us =
      config.deterministic
          ? md1_mean_wait(lambda, config.mean_service_us)
          : mmk_mean_wait(config.pes, lambda, mu);

  // The modeled machine, stripped to the queueing skeleton: one
  // accelerator, no speedup, no queue->scratchpad latency, payloads of
  // zero bytes (nothing transfers, nothing translates), a queue deep
  // enough to never reject, and outputs freed the instant they deposit.
  sim::Simulator sim;
  mem::MemorySystem mem(sim, mem::MemParams{});
  mem::Iommu iommu(sim, mem, mem::WalkParams{});
  accel::AccelParams params;
  params.type = accel::AccelType::kSer;
  params.num_pes = config.pes;
  params.input_queue_entries = 16384;
  params.output_queue_entries = 16384;
  params.overflow_capacity = 0;
  params.speedup = 1.0;
  params.queue_to_spad_latency_ns = 0.0;
  accel::Accelerator acc(sim, params, mem, iommu, noc::Location{0, {0, 0}});
  ImmediateRelease handler;
  acc.set_output_handler(&handler);

  PoissonDriver driver(sim, acc, config, interarrival_us);
  driver.start();
  sim.run();

  const accel::AccelStats& stats = acc.stats();
  out.jobs_measured = stats.input_queue_delay.count();
  out.simulated_wait_us = stats.input_queue_delay.mean_us();

  // Evaluate the closed form at the rates the finite sample actually
  // realized. Near saturation Wq amplifies load error by ~1/(1-rho)^2, so
  // the ~0.3% sampling wobble of 150k exponential draws would otherwise
  // swamp the model comparison with a few percent of spurious "error".
  const double window_us = sim::to_microseconds(driver.last_arrival());
  if (out.jobs_measured > 1 && window_us > 0.0) {
    const double lambda_hat =
        static_cast<double>(out.jobs_measured - 1) / window_us;
    const double service_hat_us =
        sim::to_microseconds(stats.pe_busy_time) /
        static_cast<double>(out.jobs_measured);
    out.predicted_util = lambda_hat * service_hat_us /
                         static_cast<double>(config.pes);
    out.predicted_wait_us =
        config.deterministic
            ? md1_mean_wait(lambda_hat, service_hat_us)
            : mmk_mean_wait(config.pes, lambda_hat, 1.0 / service_hat_us);
  }
  // Utilization over the arrival window: the drain tail after the last
  // arrival would otherwise dilute rho.
  const double window = static_cast<double>(driver.last_arrival());
  out.simulated_util =
      window > 0 ? static_cast<double>(stats.pe_busy_time) /
                       (window * static_cast<double>(config.pes))
                 : 0.0;

  out.wait_error = std::abs(out.simulated_wait_us - out.predicted_wait_us) /
                   out.predicted_wait_us;
  out.util_error = std::abs(out.simulated_util - out.predicted_util) /
                   out.predicted_util;

  std::ostringstream os;
  if (driver.drops() > 0) {
    os << driver.drops() << " arrivals rejected by a full queue; ";
  }
  if (out.jobs_measured != config.jobs) {
    os << "measured " << out.jobs_measured << " of " << config.jobs
       << " jobs; ";
  }
  if (out.wait_error > config.tolerance) {
    os << "mean wait off by " << out.wait_error * 100 << "% (sim "
       << out.simulated_wait_us << "us vs " << out.predicted_wait_us
       << "us " << (config.deterministic ? "M/D/1" : "M/M/k") << "); ";
  }
  if (out.util_error > config.tolerance) {
    os << "utilization off by " << out.util_error * 100 << "% (sim "
       << out.simulated_util << " vs " << out.predicted_util << "); ";
  }
  out.detail = os.str();
  out.passed = out.detail.empty();
  return out;
}

}  // namespace accelflow::check
