#ifndef ACCELFLOW_ACCELFLOW_H_
#define ACCELFLOW_ACCELFLOW_H_

/**
 * @file
 * Umbrella header: the public API of the AccelFlow library.
 *
 * Layers (see DESIGN.md):
 *  - accelflow::sim      — discrete-event kernel, RNG, time.
 *  - accelflow::stats    — histograms, latency recorders, table printing.
 *  - accelflow::mem      — TLB / IOMMU / LLC / DRAM timing models.
 *  - accelflow::noc      — mesh + chiplet interconnect.
 *  - accelflow::accel    — the accelerator hardware model.
 *  - accelflow::cpu      — the core-cluster model.
 *  - accelflow::core     — traces, the engine, orchestrators, the runtime.
 *  - accelflow::workload — services, suites, load generators, experiments.
 *  - accelflow::energy   — area / power / energy accounting.
 */

#include "accel/accelerator.h"
#include "accel/types.h"
#include "core/engine.h"
#include "core/machine.h"
#include "core/orchestrator.h"
#include "core/runtime.h"
#include "core/tenant_mba.h"
#include "core/trace_analysis.h"
#include "core/trace_builder.h"
#include "core/trace_compiler.h"
#include "core/trace_templates.h"
#include "energy/model.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "workload/experiment.h"
#include "workload/suites.h"

#endif  // ACCELFLOW_ACCELFLOW_H_
