#include "qos/admission.h"

#include <string>

namespace accelflow::qos {

AdmissionController::AdmissionController(sim::Simulator& sim,
                                         QosPolicy policy)
    : sim_(sim), policy_(std::move(policy)) {
  tenants_.resize(policy_.tenants.size());
}

void AdmissionController::refill(TenantState& s, const TenantSlo& slo) {
  const sim::TimePs now = sim_.now();
  if (!s.initialized) {
    // Buckets start full: a cold tenant owns its whole burst allowance.
    s.quota_tokens = slo.quota_rps * policy_.quota_burst_seconds;
    s.floor_tokens = slo.min_rps * policy_.quota_burst_seconds;
    s.refilled = now;
    s.initialized = true;
    return;
  }
  const double elapsed_s = sim::to_seconds(now - s.refilled);
  const auto top_off = [&](double& tokens, double rate) {
    if (rate <= 0) return;
    const double burst = rate * policy_.quota_burst_seconds;
    if (tokens >= burst) return;
    const double fill_s = (burst - tokens) / rate;
    tokens = elapsed_s >= fill_s ? burst : tokens + elapsed_s * rate;
  };
  top_off(s.quota_tokens, slo.quota_rps);
  top_off(s.floor_tokens, slo.min_rps);
  s.refilled = now;
}

bool AdmissionController::admit(std::size_t tenant) {
  TenantState& s = state(tenant);
  const TenantSlo& slo = policy_.tenant(static_cast<accel::TenantId>(tenant));
  ++s.stats.offered;
  refill(s, slo);

  bool within_quota = true;
  if (slo.quota_rps > 0) {
    if (s.quota_tokens >= 1.0) {
      s.quota_tokens -= 1.0;
    } else {
      within_quota = false;
    }
  }
  if (within_quota) {
    ++s.stats.admitted;
    return true;
  }
  ++s.stats.over_quota;
  // The guaranteed floor admits even under pressure.
  if (slo.min_rps > 0 && s.floor_tokens >= 1.0) {
    s.floor_tokens -= 1.0;
    ++s.stats.admitted;
    return true;
  }
  // Work-conserving: over-quota arrivals ride along while every
  // latency-sensitive tenant is within SLO.
  if (!shedding_) {
    ++s.stats.admitted;
    return true;
  }
  ++s.stats.shed;
  return false;
}

void AdmissionController::record_latency(std::size_t tenant,
                                         sim::TimePs latency) {
  TenantState& s = state(tenant);
  const TenantSlo& slo = policy_.tenant(static_cast<accel::TenantId>(tenant));
  ++s.stats.completions;
  if (slo.p99_target == sim::kTimeNever) return;
  const bool violation = latency > slo.p99_target;
  if (violation) ++s.stats.slo_violations;
  s.violation_ewma +=
      policy_.ewma_alpha * ((violation ? 1.0 : 0.0) - s.violation_ewma);
  update_pressure();
}

void AdmissionController::update_pressure() {
  // Hysteresis over the latency-sensitive tenants' violation EWMAs:
  // shedding starts when any crosses shed_enter and stops only once all
  // have decayed below shed_exit.
  bool any_hot = false;
  bool all_calm = true;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantSlo& slo = policy_.tenant(static_cast<accel::TenantId>(t));
    if (slo.cls != TenantClass::kLatencySensitive ||
        slo.p99_target == sim::kTimeNever) {
      continue;
    }
    const double ewma = tenants_[t].violation_ewma;
    if (ewma > policy_.shed_enter) any_hot = true;
    if (ewma > policy_.shed_exit) all_calm = false;
  }
  if (!shedding_ && any_hot) {
    shedding_ = true;
    ++shed_entries_;
  } else if (shedding_ && all_calm) {
    shedding_ = false;
  }
}

std::vector<TenantAdmissionStats> AdmissionController::tenant_stats() const {
  std::vector<TenantAdmissionStats> out;
  out.reserve(tenants_.size());
  for (const TenantState& s : tenants_) out.push_back(s.stats);
  return out;
}

std::uint64_t AdmissionController::total_shed() const {
  std::uint64_t n = 0;
  for (const TenantState& s : tenants_) n += s.stats.shed;
  return n;
}

std::uint64_t AdmissionController::total_admitted() const {
  std::uint64_t n = 0;
  for (const TenantState& s : tenants_) n += s.stats.admitted;
  return n;
}

void AdmissionController::reset_stats() {
  for (TenantState& s : tenants_) s.stats = TenantAdmissionStats{};
}

void AdmissionController::snapshot_metrics(obs::MetricsRegistry& reg) const {
  reg.set("qos.admission.shedding", shedding_ ? 1.0 : 0.0,
          obs::MetricsRegistry::Kind::kGauge);
  reg.set("qos.admission.shed_entries",
          static_cast<double>(shed_entries_));
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantAdmissionStats& s = tenants_[t].stats;
    const std::string p = "qos.tenant." + std::to_string(t) + ".";
    reg.set(p + "offered", static_cast<double>(s.offered));
    reg.set(p + "admitted", static_cast<double>(s.admitted));
    reg.set(p + "shed", static_cast<double>(s.shed));
    reg.set(p + "over_quota", static_cast<double>(s.over_quota));
    reg.set(p + "completions", static_cast<double>(s.completions));
    reg.set(p + "slo_violations", static_cast<double>(s.slo_violations));
    reg.set(p + "violation_ewma", tenants_[t].violation_ewma,
            obs::MetricsRegistry::Kind::kGauge);
  }
}

}  // namespace accelflow::qos
