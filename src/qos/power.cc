#include "qos/power.h"

#include <algorithm>
#include <cmath>

namespace accelflow::qos {

PowerGovernor::PowerGovernor(core::Machine& machine, PowerCapConfig config)
    : machine_(machine), config_(std::move(config)) {
  // Inertness guards: a non-positive budget, a degenerate epoch, or an
  // unusable ladder leaves the governor attached but doing nothing — no
  // events, no speed changes, no division anywhere.
  active_ = config_.budget_w > 0 && config_.epoch_us > 0 &&
            !config_.ladder.empty() && config_.ladder.front() > 0;
  if (!active_) return;
  for (double s : config_.ladder) {
    if (!std::isfinite(s) || s <= 0) {
      active_ = false;
      return;
    }
  }
  config_.power.num_cores = machine_.config().cpu.num_cores;
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    base_speedup_[accel::index_of(t)] =
        machine_.accel(t).params().speedup;
  }
}

void PowerGovernor::start(sim::TimePs until) {
  if (!active_) return;
  until_ = until;
  prev_ = snapshot_busy();
  epoch_start_ = machine_.sim().now();
  const auto epoch = static_cast<sim::TimePs>(
      sim::microseconds(config_.epoch_us));
  const sim::TimePs next = machine_.sim().now() + epoch;
  if (next > until_) return;
  machine_.sim().schedule_at(next, [this] { on_epoch(); });
}

PowerGovernor::BusySnapshot PowerGovernor::snapshot_busy() const {
  BusySnapshot s;
  s.core_busy = machine_.cores().stats().busy_time;
  s.dma_busy = machine_.dma().stats().busy_time;
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    const auto& acc = machine_.accel(t);
    s.accel_busy[accel::index_of(t)] = acc.stats().pe_busy_time;
    s.dispatcher_busy += acc.dispatcher_busy_time();
  }
  return s;
}

double PowerGovernor::estimate_power_w(const energy::Activity& activity,
                                       double scale) const {
  // Price the epoch through the energy model, swapping the accelerator
  // term for the DVFS-scaled one: dynamic accelerator power tracks
  // dvfs_power_factor(scale), everything else is frequency-independent.
  const energy::EnergyReport rep =
      energy::compute_energy(activity, config_.power, config_.area);
  const double elapsed_s = sim::to_seconds(activity.elapsed);
  if (elapsed_s <= 0) return 0.0;
  const double unscaled_accel_w = rep.accel_j / elapsed_s;
  const double scaled_accel_w =
      energy::accel_power_w(activity, config_.power, config_.area, scale);
  return rep.avg_power_w - unscaled_accel_w + scaled_accel_w;
}

void PowerGovernor::apply_level(std::size_t level) {
  const double scale = config_.ladder[level];
  for (const accel::AccelType t : accel::kAllAccelTypes) {
    machine_.accel(t).set_speedup(base_speedup_[accel::index_of(t)] *
                                  scale);
  }
}

void PowerGovernor::on_epoch() {
  const sim::TimePs now = machine_.sim().now();
  const BusySnapshot cur = snapshot_busy();

  energy::Activity act;
  act.elapsed = now - epoch_start_;
  act.core_busy = cur.core_busy - prev_.core_busy;
  for (std::size_t i = 0; i < act.accel_busy.size(); ++i) {
    act.accel_busy[i] = cur.accel_busy[i] - prev_.accel_busy[i];
  }
  act.dispatcher_busy = cur.dispatcher_busy - prev_.dispatcher_busy;
  act.dma_busy = cur.dma_busy - prev_.dma_busy;
  act.pes_per_accel = machine_.config().pes_per_accel;
  prev_ = cur;
  epoch_start_ = now;

  const double power_w = estimate_power_w(act, config_.ladder[level_]);
  ++stats_.epochs;
  stats_.last_power_w = power_w;
  stats_.sum_power_w += power_w;
  stats_.max_power_w = std::max(stats_.max_power_w, power_w);

  if (power_w > config_.budget_w && level_ + 1 < config_.ladder.size()) {
    ++level_;
    ++stats_.steps_down;
    apply_level(level_);
  } else if (level_ > 0 &&
             estimate_power_w(act, config_.ladder[level_ - 1]) <
                 config_.step_up_headroom * config_.budget_w) {
    --level_;
    ++stats_.steps_up;
    apply_level(level_);
  }
  if (level_ > 0) ++stats_.capped_epochs;
  stats_.min_scale = std::min(stats_.min_scale, config_.ladder[level_]);

  const auto epoch = static_cast<sim::TimePs>(
      sim::microseconds(config_.epoch_us));
  const sim::TimePs next = now + epoch;
  if (next > until_) return;  // Horizon reached: let the calendar drain.
  machine_.sim().schedule_at(next, [this] { on_epoch(); });
}

void PowerGovernor::restore(const Checkpoint& c) {
  level_ = c.level;
  prev_ = c.prev;
  epoch_start_ = c.epoch_start;
  stats_ = c.stats;
  if (active_) apply_level(level_);
}

void PowerGovernor::snapshot_metrics(obs::MetricsRegistry& reg) const {
  using Kind = obs::MetricsRegistry::Kind;
  reg.set("qos.power.budget_w", config_.budget_w, Kind::kGauge);
  reg.set("qos.power.scale", scale(), Kind::kGauge);
  reg.set("qos.power.epochs", static_cast<double>(stats_.epochs));
  reg.set("qos.power.capped_epochs",
          static_cast<double>(stats_.capped_epochs));
  reg.set("qos.power.steps_down", static_cast<double>(stats_.steps_down));
  reg.set("qos.power.steps_up", static_cast<double>(stats_.steps_up));
  reg.set("qos.power.avg_w", stats_.avg_power_w(), Kind::kGauge);
  reg.set("qos.power.max_w", stats_.max_power_w, Kind::kGauge);
}

}  // namespace accelflow::qos
