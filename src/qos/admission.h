#ifndef ACCELFLOW_QOS_ADMISSION_H_
#define ACCELFLOW_QOS_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "qos/policy.h"
#include "sim/simulator.h"

/**
 * @file
 * Latency-aware admission control with load shedding at the load-generator
 * boundary (DESIGN.md §19).
 *
 * Every arrival consults admit() before injection. Per tenant, a token
 * bucket at TenantSlo::quota_rps classifies the arrival as within- or
 * over-quota; a second bucket at TenantSlo::min_rps marks the guaranteed
 * floor. Over-quota arrivals are shed only while the controller is in the
 * *shedding* state, entered when any latency-sensitive tenant's SLO-
 * violation EWMA crosses QosPolicy::shed_enter and left once every such
 * EWMA has decayed below QosPolicy::shed_exit (hysteresis). Within-quota
 * and within-floor arrivals are never shed — which is what confines
 * shedding to the tenant actually exceeding its allocation.
 *
 * Deterministic and checkpointable: decisions are pure functions of
 * simulated time and completion history, so forked timelines replay
 * identically (DESIGN.md §13).
 */

namespace accelflow::qos {

/** Per-tenant admission accounting. */
struct TenantAdmissionStats {
  std::uint64_t offered = 0;      ///< Arrivals that consulted admit().
  std::uint64_t admitted = 0;     ///< Injected.
  std::uint64_t shed = 0;         ///< Refused at the load-gen boundary.
  std::uint64_t over_quota = 0;   ///< Arrivals beyond quota_rps.
  std::uint64_t completions = 0;  ///< Latencies observed.
  std::uint64_t slo_violations = 0;  ///< Completions above p99_target.
};

/** One controller guards one machine's (or shard's) arrival boundary. */
class AdmissionController {
 public:
  AdmissionController(sim::Simulator& sim, QosPolicy policy);

  /** Admission decision for one arrival of `tenant` at the current
   *  simulated time. False = shed (the generator drops the arrival). */
  bool admit(std::size_t tenant);

  /** Feeds one completed request's end-to-end latency back into the
   *  tenant's SLO-violation EWMA (called by workload::RequestEngine). */
  void record_latency(std::size_t tenant, sim::TimePs latency);

  /** True while over-quota arrivals are being shed. */
  bool shedding() const { return shedding_; }

  const QosPolicy& policy() const { return policy_; }

  /** Accounting for `tenant`; zeroed sentinel for tenants never seen. */
  const TenantAdmissionStats& stats(std::size_t tenant) const {
    static const TenantAdmissionStats kNone{};
    return tenant < tenants_.size() ? tenants_[tenant].stats : kNone;
  }

  /** Per-tenant accounting, indexed by tenant id. */
  std::vector<TenantAdmissionStats> tenant_stats() const;

  std::uint64_t total_shed() const;
  std::uint64_t total_admitted() const;

  /** Zeroes the accounting (end of warmup). Bucket levels, EWMAs and the
   *  shedding state carry over: they are the controller's operating
   *  point, not measurements. */
  void reset_stats();

  /** Exports per-tenant counters under "qos.tenant.<id>.*" plus the
   *  controller state under "qos.admission.*" (OBSERVABILITY.md). */
  void snapshot_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct TenantState {
    double quota_tokens = 0;    ///< Requests of quota credit.
    double floor_tokens = 0;    ///< Requests of guaranteed-floor credit.
    sim::TimePs refilled = 0;   ///< Last bucket refill timestamp.
    bool initialized = false;
    double violation_ewma = 0;  ///< EWMA of the SLO-violation indicator.
    TenantAdmissionStats stats;
  };

 public:
  /** Deep copy of the controller state (DESIGN.md §13). */
  struct Checkpoint {
    std::vector<TenantState> tenants;  ///< Buckets, EWMAs, accounting.
    bool shedding = false;             ///< Hysteresis state.
    std::uint64_t shed_entries = 0;    ///< Shedding-state entries.
  };

  /** Captures buckets, EWMAs and the hysteresis state. */
  Checkpoint checkpoint() const {
    return Checkpoint{tenants_, shedding_, shed_entries_};
  }

  /** Restores state captured by checkpoint(). */
  void restore(const Checkpoint& c) {
    tenants_ = c.tenants;
    shedding_ = c.shedding;
    shed_entries_ = c.shed_entries;
  }

 private:
  /** Grow-on-demand per-tenant slot. */
  TenantState& state(std::size_t tenant) {
    if (tenant >= tenants_.size()) tenants_.resize(tenant + 1);
    return tenants_[tenant];
  }

  /** Refills both buckets, clamped at the burst allowance (the same
   *  time-compare form as core::TenantBandwidthLimiter — no huge
   *  elapsed*rate intermediates across long idle gaps). */
  void refill(TenantState& s, const TenantSlo& slo);

  /** Re-evaluates the shed hysteresis after an EWMA update. */
  void update_pressure();

  sim::Simulator& sim_;
  QosPolicy policy_;
  std::vector<TenantState> tenants_;
  bool shedding_ = false;
  std::uint64_t shed_entries_ = 0;
};

}  // namespace accelflow::qos

#endif  // ACCELFLOW_QOS_ADMISSION_H_
