#ifndef ACCELFLOW_QOS_POWER_H_
#define ACCELFLOW_QOS_POWER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/machine.h"
#include "energy/model.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

/**
 * @file
 * Power-capped operation: a periodic governor that holds the package's
 * modeled power under a budget by DVFS-style PE speed scaling
 * (DESIGN.md §19). This is what finally wires src/energy into the
 * simulated machine.
 *
 * Every epoch the governor reads the machine's busy-time deltas, prices
 * them through energy::compute_energy / energy::accel_power_w at the
 * current DVFS level, and walks a discrete frequency ladder: one step
 * slower when the epoch's power exceeds the budget, one step faster when
 * it would still fit under the budget's headroom at the faster level.
 * Slower levels multiply every accelerator's compute speedup by the
 * ladder scale — PE service times stretch, which the critical-path
 * analyzer attributes as longer `pe_service`, and dynamic accelerator
 * power drops by energy::dvfs_power_factor (~scale^3).
 *
 * Checkpoint-reversible: the applied speedups live in each accelerator's
 * AccelParams (captured by Machine::checkpoint()), and the governor's own
 * Checkpoint carries the ladder level and accumulators; restore()
 * re-applies the level so a forked timeline resumes at the captured
 * operating point. Epoch events stop at the configured cutoff, so a
 * drained calendar stays drainable (the SweepSession fork contract).
 *
 * A budget <= 0 (the default) is fully inert: no events, no speed
 * changes, no division anywhere — mirroring the tenant_mba rate<=0 and
 * energy zero-PE guards.
 */

namespace accelflow::qos {

/** Power-cap configuration. */
struct PowerCapConfig {
  /** Package power budget in watts; <= 0 disables the governor. */
  double budget_w = 0.0;
  /** Governor epoch. */
  double epoch_us = 100.0;
  /** Fraction of the budget the *faster* level's estimate must fit under
   *  before stepping back up (headroom against level flapping). */
  double step_up_headroom = 0.90;
  /** Discrete DVFS frequency ladder, fastest first. Entry 0 must be 1.0
   *  (nominal); later entries scale every accelerator's compute speedup
   *  and, cubed, its dynamic power. */
  std::vector<double> ladder = {1.0, 0.85, 0.70, 0.55, 0.40};
  /** Power model priced against the machine's activity; num_cores is
   *  overridden from the machine config at attach. */
  energy::PowerModel power;
  energy::AreaModel area;
};

/** Governor accounting. */
struct PowerStats {
  std::uint64_t epochs = 0;         ///< Epoch evaluations.
  std::uint64_t steps_down = 0;     ///< Level lowered (slower, cooler).
  std::uint64_t steps_up = 0;       ///< Level raised back toward nominal.
  std::uint64_t capped_epochs = 0;  ///< Epochs spent below nominal.
  double min_scale = 1.0;           ///< Slowest ladder scale reached.
  double max_power_w = 0.0;         ///< Hottest epoch estimate.
  double sum_power_w = 0.0;         ///< Sum over epochs (for the mean).
  double last_power_w = 0.0;        ///< Most recent epoch estimate.

  double avg_power_w() const {
    return epochs > 0 ? sum_power_w / static_cast<double>(epochs) : 0.0;
  }
};

/** DVFS-style power governor over one machine. */
class PowerGovernor {
 public:
  /** Attaches to `machine`; call start() to begin governing. An invalid
   *  config (budget <= 0, empty ladder) leaves the governor inert. */
  PowerGovernor(core::Machine& machine, PowerCapConfig config);

  /** Schedules epoch evaluations from now until `until` (the issue+drain
   *  horizon). No event is scheduled past `until`, so the calendar still
   *  drains to quiescence. Inert configs schedule nothing. */
  void start(sim::TimePs until);

  /** Re-arms a stopped governor with a new horizon (the SweepSession
   *  fork/resume pattern — see workload::LoadGenerator::resume()). Only
   *  call when no epoch event is pending. */
  void resume(sim::TimePs until) { start(until); }

  bool active() const { return active_; }
  /** Current ladder index (0 = nominal frequency). */
  std::size_t level() const { return level_; }
  /** Current frequency scale applied to every accelerator. */
  double scale() const {
    return active_ ? config_.ladder[level_] : 1.0;
  }

  const PowerStats& stats() const { return stats_; }
  const PowerCapConfig& config() const { return config_; }

  /** Zeroes the accounting (end of warmup). The ladder level carries
   *  over: it is the operating point, not a measurement. */
  void reset_stats() { stats_ = PowerStats{}; }

  /** Exports "qos.power.*" gauges and counters (OBSERVABILITY.md). */
  void snapshot_metrics(obs::MetricsRegistry& reg) const;

 private:
  /** Cumulative machine busy times (the epoch delta's basis). */
  struct BusySnapshot {
    sim::TimePs core_busy = 0;
    std::array<sim::TimePs, accel::kNumAccelTypes> accel_busy{};
    sim::TimePs dispatcher_busy = 0;
    sim::TimePs dma_busy = 0;
  };

 public:
  /** Deep copy of the governor state (DESIGN.md §13). The speedups the
   *  level implies are captured by the accelerators' own checkpoints. */
  struct Checkpoint {
    std::size_t level = 0;     ///< Ladder index.
    BusySnapshot prev;         ///< Busy-time anchor of the next epoch.
    sim::TimePs epoch_start = 0;
    PowerStats stats;
  };

  /** Captures level, accumulators and counters. */
  Checkpoint checkpoint() const {
    return Checkpoint{level_, prev_, epoch_start_, stats_};
  }

  /** Restores state captured by checkpoint() and re-applies the level's
   *  speed scale (idempotent against a paired Machine::restore(), which
   *  already restored the per-accelerator speedups). Pair with resume()
   *  to re-arm the epoch event. */
  void restore(const Checkpoint& c);

 private:
  void on_epoch();
  BusySnapshot snapshot_busy() const;
  /** Epoch power estimate at DVFS scale `scale` for the given deltas. */
  double estimate_power_w(const energy::Activity& activity,
                          double scale) const;
  /** Applies ladder level `level`'s scale to every accelerator. */
  void apply_level(std::size_t level);

  core::Machine& machine_;
  PowerCapConfig config_;
  bool active_ = false;       ///< Valid config (budget > 0, ladder sane).
  std::size_t level_ = 0;
  /** Nominal per-type speedups captured at attach; level scales apply
   *  multiplicatively on top. */
  std::array<double, accel::kNumAccelTypes> base_speedup_{};
  BusySnapshot prev_;
  sim::TimePs epoch_start_ = 0;
  sim::TimePs until_ = 0;
  PowerStats stats_;
};

}  // namespace accelflow::qos

#endif  // ACCELFLOW_QOS_POWER_H_
