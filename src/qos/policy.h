#ifndef ACCELFLOW_QOS_POLICY_H_
#define ACCELFLOW_QOS_POLICY_H_

#include <cstdint>
#include <vector>

#include "accel/types.h"
#include "sim/time.h"

/**
 * @file
 * Multi-tenant QoS policy (DESIGN.md §19).
 *
 * The paper's Section IV-D tenancy knobs (the per-tenant trace cap and the
 * MBA-style bandwidth limiter) bound *resource use*; a production deployment
 * also needs per-tenant *service objectives*. A QosPolicy declares, per
 * tenant (== workload service index), a latency SLO, an admission quota, an
 * accelerator-side active-chain quota, and a queue priority class; plus two
 * ensemble-wide dispatcher knobs (reserved input slots and priority aging).
 *
 * Three subsystems consume one policy:
 *  - qos::AdmissionController sheds over-quota arrivals at the load-gen
 *    boundary while any latency-sensitive tenant is out of SLO,
 *  - core::AccelFlowEngine caps concurrent chains per tenant and stamps
 *    queue-entry priorities from the tenant class,
 *  - accel::Accelerator / accel::SramQueue reserve input-queue headroom for
 *    prioritized entries and age waiting priorities so best-effort tenants
 *    cannot starve.
 *
 * An empty policy (the default everywhere) is a behavioral no-op: every
 * default below reproduces the pre-QoS engine bit-for-bit.
 */

namespace accelflow::qos {

/** Tenant service class. */
enum class TenantClass : std::uint8_t {
  kBestEffort = 0,        ///< Sheddable under pressure; no latency SLO.
  kLatencySensitive = 1,  ///< Holds an SLO; its violations gate shedding.
};

/** One tenant's objectives and quotas. */
struct TenantSlo {
  TenantClass cls = TenantClass::kBestEffort;
  /** P99 latency target; violations feed the shed hysteresis. kTimeNever
   *  (the default) means "no latency SLO". */
  sim::TimePs p99_target = sim::kTimeNever;
  /** Guaranteed admission floor in requests/second: arrivals within this
   *  rate are never shed, pressure or not. 0 = no floor. */
  double min_rps = 0.0;
  /** Admission quota in requests/second; arrivals beyond it are sheddable
   *  while the ensemble is under latency pressure. 0 = unlimited. */
  double quota_rps = 0.0;
  /** Max concurrently-executing chains for this tenant; combines (min)
   *  with the ensemble-wide EngineConfig::tenant_max_active. */
  std::uint32_t max_active_chains = 1u << 30;
  /** Queue priority stamped on this tenant's entries (SchedPolicy::
   *  kPriority dispatches higher first). 0 = best-effort: such entries
   *  may also be refused the reserved input-queue headroom. */
  std::uint8_t priority = 0;
};

/** Full policy for one machine (or one shard of a cluster). */
struct QosPolicy {
  /** Per-tenant objectives, indexed by tenant id (== service index).
   *  Empty (the default) disables the whole QoS layer. */
  std::vector<TenantSlo> tenants;

  /** Input-queue slots a best-effort (priority-0) entry may not consume:
   *  headroom held back for prioritized tenants (accel::SramQueue). */
  std::size_t reserved_input_slots = 0;
  /** Waiting time that raises an entry's effective priority by one level
   *  under SchedPolicy::kPriority, so best-effort entries cannot starve
   *  behind a saturating prioritized tenant. 0 = aging off. */
  double aging_quantum_us = 0.0;

  // Admission-controller tuning (DESIGN.md §19 state machine).
  /** Burst allowance of the quota/floor token buckets, as seconds of
   *  credit at the configured rate. */
  double quota_burst_seconds = 0.02;
  /** EWMA step for the per-tenant SLO-violation indicator. */
  double ewma_alpha = 0.05;
  /** Enter shedding when any latency-sensitive tenant's violation EWMA
   *  exceeds this fraction... */
  double shed_enter = 0.10;
  /** ...and leave it only once every such tenant's EWMA has decayed below
   *  this (hysteresis: enter > exit prevents flapping). */
  double shed_exit = 0.02;

  bool enabled() const { return !tenants.empty(); }

  /** `tenant`'s objectives; unknown tenants get the all-defaults entry
   *  (no SLO, no quotas — exactly the pre-QoS behavior). */
  const TenantSlo& tenant(accel::TenantId t) const {
    static const TenantSlo kDefault{};
    return t < tenants.size() ? tenants[t] : kDefault;
  }

  /**
   * Tenant-isolation defaults for `num_tenants` services: every tenant in
   * one priority class (1, above best-effort so the reserved headroom
   * never refuses it), a generous active-chain cap, dispatcher aging and
   * reserved headroom on. No quotas and no SLOs, so the admission
   * controller never sheds — this is what AF_QOS=1 applies to runs whose
   * config carries no explicit policy.
   */
  static QosPolicy isolation_defaults(std::size_t num_tenants) {
    QosPolicy p;
    p.tenants.resize(num_tenants);
    for (TenantSlo& t : p.tenants) {
      t.priority = 1;
      t.max_active_chains = 1024;
    }
    p.reserved_input_slots = 4;
    p.aging_quantum_us = 25.0;
    return p;
  }
};

}  // namespace accelflow::qos

#endif  // ACCELFLOW_QOS_POLICY_H_
