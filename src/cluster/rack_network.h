#ifndef ACCELFLOW_CLUSTER_RACK_NETWORK_H_
#define ACCELFLOW_CLUSTER_RACK_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

/**
 * @file
 * The rack/network hop model between machine shards (DESIGN.md §17).
 *
 * Shards are placed into racks round-robin-contiguously
 * (machines_per_rack per rack); a cross-shard RPC pays a base hop latency
 * (intra- or inter-rack) plus wire serialization at the configured line
 * rate, following RPCAcc's cross-host RPC decomposition (PAPERS.md):
 * propagation + switching dominates small RPCs, serialization dominates
 * bulk. Link faults model tail-inflating retransmits: with the configured
 * probability a message pays a multiplied latency (the TCP RTO/ECN
 * recovery shape), drawn from the model's own seeded stream.
 *
 * The *minimum* possible hop latency is the conservative-lookahead window
 * of the parallel cluster simulation (cluster::Datacenter): any message
 * sent in window k arrives no earlier than window k+1's start, so
 * delivering merged messages at the barrier between windows is always
 * causally safe. hop_latency() is therefore required (and asserted) to
 * never return less than lookahead().
 *
 * Latency draws happen at the window barrier on the coordinator thread
 * (messages are processed in deterministic shard/push order), so one RNG
 * stream and one Stats block suffice without races.
 */

namespace accelflow::cluster {

/** Rack/network topology and cost parameters. */
struct RackParams {
  /** Shards per rack: shard s sits in rack s / machines_per_rack. */
  int machines_per_rack = 4;
  /** Base one-way hop inside a rack (ToR switch only). */
  double intra_rack_hop_us = 6.0;
  /** Base one-way hop across racks (ToR + aggregation + ToR). */
  double inter_rack_hop_us = 18.0;
  /** Line rate for wire serialization, Gbit/s. */
  double line_gbps = 40.0;
  /** Modeled wire size of an RPC request (the response carries the
   *  callee's sampled payload). */
  std::uint64_t request_bytes = 1024;
  /** Per-message retransmit probability (link fault injection). */
  double link_fault_prob = 0.0;
  /** Latency multiplier a retransmitted message pays. */
  double retransmit_factor = 3.0;
  /** Seed of the link-fault stream. */
  std::uint64_t seed = 0x5ACC2026;
};

/** Latency model + fault stream for cross-shard messages. */
class RackNetwork {
 public:
  /** Link activity counters. */
  struct Stats {
    std::uint64_t messages = 0;       ///< Hops taken (requests + replies).
    std::uint64_t bytes = 0;          ///< Wire bytes serialized.
    std::uint64_t intra_rack = 0;     ///< Hops within one rack.
    std::uint64_t inter_rack = 0;     ///< Hops crossing racks.
    std::uint64_t retransmits = 0;    ///< Link-fault retransmissions.
    sim::TimePs total_latency = 0;    ///< Summed hop latency.
  };

  RackNetwork(const RackParams& params, std::size_t shards);

  const RackParams& params() const { return params_; }
  std::size_t shards() const { return shards_; }

  /** Rack index hosting shard `s`. */
  int rack_of(std::size_t s) const {
    return static_cast<int>(s) / params_.machines_per_rack;
  }

  /** True when both shards share a rack (pay the intra-rack base). */
  bool same_rack(std::size_t a, std::size_t b) const {
    return rack_of(a) == rack_of(b);
  }

  /**
   * The conservative-lookahead window: the minimum latency any message
   * can have (intra-rack base + zero serialization). Every hop_latency()
   * result is >= this by construction.
   */
  sim::TimePs lookahead() const { return lookahead_; }

  /**
   * One-way latency of a `bytes`-sized message from shard `src` to shard
   * `dst`, advancing the link-fault stream. Updates stats. Call only from
   * the window barrier (single-threaded, deterministic message order).
   */
  sim::TimePs hop_latency(std::size_t src, std::size_t dst,
                          std::uint64_t bytes);

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /** Deep copy of the deterministic link state (fork support). */
  struct Checkpoint {
    std::array<std::uint64_t, 4> rng{};  ///< Link-fault stream.
    Stats stats;                         ///< Counters at capture.
  };

  Checkpoint checkpoint() const { return Checkpoint{rng_.state(), stats_}; }

  void restore(const Checkpoint& c) {
    rng_.set_state(c.rng);
    stats_ = c.stats;
  }

 private:
  RackParams params_;
  std::size_t shards_;
  sim::TimePs lookahead_;
  sim::Rng rng_;
  Stats stats_;
};

}  // namespace accelflow::cluster

#endif  // ACCELFLOW_CLUSTER_RACK_NETWORK_H_
