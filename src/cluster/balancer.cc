#include "cluster/balancer.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace accelflow::cluster {

namespace {
/** Mixes values into a 64-bit hash (splitmix-style finalizer). */
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}
}  // namespace

Balancer::Balancer(BalancePolicy policy, std::size_t shards,
                   std::uint64_t seed)
    : policy_(policy), shards_(shards), seed_(seed) {
  assert(shards_ > 0);
  live_.resize(shards_);
  std::iota(live_.begin(), live_.end(), std::size_t{0});
  load_.assign(shards_, 0);
  rebuild_ring();
}

void Balancer::set_live_shards(std::vector<std::size_t> live) {
  assert(!live.empty());
  assert(std::is_sorted(live.begin(), live.end()));
  live_ = std::move(live);
  rebuild_ring();
}

void Balancer::update_load(std::vector<std::uint64_t> load) {
  assert(load.size() == shards_);
  load_ = std::move(load);
}

void Balancer::rebuild_ring() {
  // Vnode positions depend only on (seed, shard, replica) — never on the
  // live set — so survivors keep their exact ring points when a shard is
  // removed: the consistent-hash remap property by construction.
  ring_.clear();
  ring_.reserve(live_.size() * kVnodesPerShard);
  for (const std::size_t s : live_) {
    for (std::size_t r = 0; r < kVnodesPerShard; ++r) {
      ring_.push_back(RingPoint{mix(seed_, s * kVnodesPerShard + r),
                                static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.point < b.point || (a.point == b.point &&
                                           a.shard < b.shard);
            });
}

std::size_t Balancer::route(std::size_t service, std::uint64_t seq,
                            sim::TimePs /*now*/) const {
  if (live_.size() == 1) return live_[0];
  switch (policy_) {
    case BalancePolicy::kRoundRobin:
      return live_[seq % live_.size()];
    case BalancePolicy::kLeastLoaded: {
      // Join-the-shortest-queue over the barrier-synchronized snapshot;
      // ties go to the lowest live index (deterministic).
      std::size_t best = live_[0];
      for (const std::size_t s : live_) {
        if (load_[s] < load_[best]) best = s;
      }
      return best;
    }
    case BalancePolicy::kConsistentHash: {
      const std::uint64_t key = mix(mix(seed_ ^ 0xA5A5, service), seq);
      auto it = std::lower_bound(
          ring_.begin(), ring_.end(), key,
          [](const RingPoint& p, std::uint64_t k) { return p.point < k; });
      if (it == ring_.end()) it = ring_.begin();  // Wrap around the ring.
      return it->shard;
    }
  }
  return live_[0];
}

sim::TimePs Balancer::decision_cost_ps() {
  // The CPU-side cost of one steering decision (flow-table lookup + queue
  // enqueue) is ~0.3us — the machine model's manager_dispatch_us analog;
  // LdB executes it at its calibrated speedup.
  const double cpu_us = 0.3;
  return static_cast<sim::TimePs>(
      sim::microseconds(cpu_us) /
      accel::default_speedup(accel::AccelType::kLdb));
}

}  // namespace accelflow::cluster
