#ifndef ACCELFLOW_CLUSTER_DATACENTER_H_
#define ACCELFLOW_CLUSTER_DATACENTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/rack_network.h"
#include "workload/experiment.h"

/**
 * @file
 * Cluster-scale sharded serving (DESIGN.md §17): N `core::Machine` shards
 * behind a load-balancer tier, cross-shard RPCs over a rack/network
 * model, and parallel per-shard event-kernel advancement with
 * conservative-lookahead synchronization.
 *
 * ## Replicated arrival streams
 *
 * Every shard runs identical LoadGenerators (same seeds, same models);
 * the Balancer — a pure function consulted through
 * workload::ArrivalRouter — decides which shard owns each arrival. The
 * owner injects it, everyone else drops it. No arrival crosses a thread
 * boundary, and a 1-shard Datacenter degenerates *exactly* into
 * workload::run_experiment(): same construction order, same RNG streams,
 * same calendar — the conformance oracle (tests/test_cluster.cc).
 *
 * ## Conservative-lookahead windows
 *
 * Shards advance in lockstep windows of L = RackNetwork::lookahead() (the
 * minimum cross-shard hop latency). Within a window each shard's
 * single-threaded simulator runs independently on the worker pool;
 * cross-shard messages accumulate in per-shard outboxes. At the barrier
 * the coordinator merges outboxes in (source shard, push order) — a fixed
 * total order — draws each message's hop latency, and schedules delivery
 * into the destination calendar. A message sent at t > W pays >= L of
 * wire time, so it arrives at > W + L: never inside the window being
 * computed, which is what makes barrier delivery causally safe and the
 * whole simulation bit-deterministic regardless of thread count (the
 * PR 1 ParallelRunner guarantee, extended to coupled simulations).
 *
 * ## Fork/checkpoint
 *
 * ClusterSession mirrors workload::SweepSession at cluster scope: warmup
 * once, drain every shard to global quiescence (empty calendars, empty
 * outboxes, no pending RPCs), capture whole-cluster state (per-shard
 * machine/orchestrator/engine/generator/checker/injector checkpoints plus
 * the rack's link-fault stream), then fork measurement points from it.
 */

namespace accelflow::cluster {

/** Full description of one cluster run. */
struct ClusterConfig {
  /**
   * The per-shard workload: machine, engine, suite, rates, windows and
   * seed, exactly as one run_experiment() point. Rates are the rates of
   * the *replicated* stream, i.e. the whole cluster's offered load — each
   * shard owns ~1/N of it. tracer/metrics/checker attach to shard 0
   * (single-simulation observers); under AF_CHECK every shard gets its
   * own internal checker.
   */
  workload::ExperimentConfig experiment;
  /** Machine shard count. */
  std::size_t shards = 1;
  /** Load-balancer tier policy. */
  BalancePolicy policy = BalancePolicy::kConsistentHash;
  /** Rack/network topology and hop costs. */
  RackParams rack;
  /**
   * Fraction of nested RPCs (ServiceSpec::rpc_callees) that execute on a
   * remote shard instead of locally, exercising the rack network. Drawn
   * from a per-shard stream independent of the workload's RNGs.
   */
  double remote_rpc_fraction = 0.25;
  /**
   * Worker threads advancing shards in parallel; 0 picks
   * min(shards, ParallelRunner::default_threads()). Results are
   * bit-identical for every value (AF_BENCH_THREADS=1 forces serial).
   */
  unsigned threads = 0;
  /**
   * run() only: after the nominal warmup+measure+drain horizon, keep
   * advancing windows until the whole cluster is quiescent (empty
   * calendars, outboxes and pending-RPC maps). A fixed horizon can leave
   * a fault-retried chain — or a cross-shard reply sent inside the final
   * lookahead window — undelivered; the soak harness (tools/cluster_soak)
   * needs true quiescence to assert zero lost chains.
   */
  bool drain_to_quiescence = false;
};

/** Aggregate outcome of one cluster run. */
struct ClusterResult {
  /** Per-shard results, harvested by workload::harvest_result — shard
   *  entries are byte-compatible with bare run_experiment() output. */
  std::vector<workload::ExperimentResult> shards;
  /** Arrivals each shard owned (injected) over the measured window. */
  std::vector<std::uint64_t> admitted;
  /** Rack-network activity (cross-shard hops). */
  RackNetwork::Stats network;
  /** Nested RPCs that crossed shards. */
  std::uint64_t remote_rpcs = 0;
  /** Routing decisions the LB tier executed (0 for a single shard). */
  std::uint64_t balancer_decisions = 0;
  /** Modeled LdB occupancy of the tier: decisions x decision cost. */
  sim::TimePs balancer_busy = 0;
  /** Simulated end time of the run. */
  sim::TimePs elapsed = 0;

  /** Requests completed across all shards. */
  std::uint64_t total_completed() const {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.total_completed();
    return n;
  }
};

/** The sharded datacenter: N machines + LB tier + rack network. */
class Datacenter {
 public:
  /**
   * Builds every shard (machine, services, orchestrator, engine,
   * replicated generators) plus the balancer and rack model.
   *
   * @param fork_mode when true, warmup generators stop at
   *        experiment.warmup so prepare() can drain to quiescence (the
   *        ClusterSession protocol); when false, run() drives the
   *        straight-through run_experiment() protocol.
   */
  explicit Datacenter(const ClusterConfig& config, bool fork_mode = false);
  Datacenter(const Datacenter&) = delete;
  Datacenter& operator=(const Datacenter&) = delete;
  ~Datacenter();

  /**
   * Straight-through protocol (fork_mode == false), the cluster analog of
   * run_experiment(): advance to warmup, reset recorders, advance to
   * warmup + measure + drain, harvest, run final audits (per-shard
   * checker + critpath conservation under AF_CHECK).
   */
  ClusterResult run();

  // --- Fork protocol (fork_mode == true, used via ClusterSession) -------

  /** Warmup + drain to global quiescence + capture the fork checkpoint. */
  void prepare();

  /** True once prepare() captured the checkpoint. */
  bool prepared() const;

  /** Simulated time of the fork point (>= experiment.warmup). */
  sim::TimePs fork_time() const { return t_fork_; }

  /**
   * Restores the whole-cluster checkpoint, scales every generator rate by
   * `rate_factor`, simulates a fresh measurement window + drain, and
   * harvests. Callable any number of times; bit-identical per factor.
   */
  ClusterResult run_point(double rate_factor = 1.0);

  // --- Introspection (tests, benches) -----------------------------------

  const ClusterConfig& config() const { return config_; }
  std::size_t shards() const;
  sim::TimePs now() const { return now_; }
  Balancer& balancer() { return *balancer_; }
  RackNetwork& rack() { return *rack_; }
  core::Machine& machine(std::size_t shard);
  workload::RequestEngine& engine(std::size_t shard);
  /** Worker threads the window engine uses (after clamping). */
  unsigned threads() const { return threads_; }

 private:
  struct Shard;      // One machine + its harness (datacenter.cc).
  struct Message;    // A cross-shard RPC hop (datacenter.cc).
  struct ForkState;  // The whole-cluster checkpoint (datacenter.cc).
  class ShardPool;   // Persistent window workers (datacenter.cc).

  /** Advances the whole cluster to `target` in lookahead windows. */
  void advance_to(sim::TimePs target);
  /** Runs one window on every shard (parallel when pool_ exists). */
  void run_window(sim::TimePs horizon);
  /** Merges outboxes + refreshes the load snapshot (the barrier). */
  void barrier_sync();
  /** Schedules one merged message into its destination calendar. */
  void deliver_message(const Message& m);
  /** Cross-shard nested-RPC entry, called from shard `src`'s thread. */
  void route_nested(std::size_t src, double rtt_us, core::ChainContext& ctx,
                    std::size_t callee,
                    std::function<void(std::uint64_t)> deliver);
  /** True when every calendar, outbox and pending-RPC map is empty. */
  bool quiescent() const;
  /**
   * Advances windows until quiescent(). Idle gaps fast-forward straight
   * to the earliest pending event across all calendars (causally safe
   * with every outbox empty: nothing is on the wire, so no event can
   * appear before it). Multi-shard only; 1-shard callers use sim().run().
   */
  void drain_quiescent();
  /** Per-shard harvest + cluster aggregates. */
  ClusterResult harvest();
  /** Per-shard checker final audits (abort under AF_CHECK) + critpath. */
  void final_audits();
  /** Zeroes measurement recorders (end of warmup / point start). */
  void reset_stats();

  ClusterConfig config_;
  bool fork_mode_;
  unsigned threads_ = 1;
  std::unique_ptr<Balancer> balancer_;
  std::unique_ptr<RackNetwork> rack_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ShardPool> pool_;
  std::unique_ptr<ForkState> fork_;
  sim::TimePs now_ = 0;
  sim::TimePs t_fork_ = 0;
  bool ran_ = false;
};

/**
 * SweepSession-style fork engine over whole-cluster snapshots: one warmup
 * simulation shared by any number of measurement points (load scaling,
 * policy A/B at identical warm state). Determinism contract matches
 * SweepSession: run_point(f) is bit-identical no matter how many points
 * ran before it, and identical to a fresh session running only f.
 */
class ClusterSession {
 public:
  explicit ClusterSession(const ClusterConfig& config)
      : dc_(config, /*fork_mode=*/true) {}

  /** Simulates warmup, drains to quiescence, captures the checkpoint. */
  void prepare() { dc_.prepare(); }
  bool prepared() const { return dc_.prepared(); }
  sim::TimePs fork_time() const { return dc_.fork_time(); }

  /** Forks one measurement point at `rate_factor` x configured rates. */
  ClusterResult run_point(double rate_factor = 1.0) {
    return dc_.run_point(rate_factor);
  }

  Datacenter& datacenter() { return dc_; }

 private:
  Datacenter dc_;
};

}  // namespace accelflow::cluster

#endif  // ACCELFLOW_CLUSTER_DATACENTER_H_
