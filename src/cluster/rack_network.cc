#include "cluster/rack_network.h"

#include <cassert>
#include <cmath>

namespace accelflow::cluster {

RackNetwork::RackNetwork(const RackParams& params, std::size_t shards)
    : params_(params), shards_(shards), rng_(params.seed) {
  assert(params_.machines_per_rack > 0);
  assert(params_.intra_rack_hop_us > 0.0);
  assert(params_.inter_rack_hop_us >= params_.intra_rack_hop_us);
  assert(params_.line_gbps > 0.0);
  assert(params_.retransmit_factor >= 1.0);
  lookahead_ = static_cast<sim::TimePs>(
      sim::microseconds(params_.intra_rack_hop_us));
  assert(lookahead_ > 0);
}

sim::TimePs RackNetwork::hop_latency(std::size_t src, std::size_t dst,
                                     std::uint64_t bytes) {
  assert(src < shards_ && dst < shards_ && src != dst);
  const bool intra = same_rack(src, dst);
  const double base_us =
      intra ? params_.intra_rack_hop_us : params_.inter_rack_hop_us;
  // Serialization: bytes * 8 bits at line_gbps Gbit/s = ns per byte*8/G.
  const double wire_us =
      static_cast<double>(bytes) * 8.0 / (params_.line_gbps * 1000.0);
  double latency_us = base_us + wire_us;
  if (params_.link_fault_prob > 0.0 &&
      rng_.bernoulli(params_.link_fault_prob)) {
    latency_us *= params_.retransmit_factor;
    ++stats_.retransmits;
  }
  const auto latency =
      static_cast<sim::TimePs>(sim::microseconds(latency_us));
  assert(latency >= lookahead_ &&
         "hop latency below the conservative-lookahead window");
  ++stats_.messages;
  stats_.bytes += bytes;
  if (intra) {
    ++stats_.intra_rack;
  } else {
    ++stats_.inter_rack;
  }
  stats_.total_latency += latency;
  return latency;
}

}  // namespace accelflow::cluster
