#include "cluster/datacenter.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/trace_templates.h"
#include "critpath/critpath.h"
#include "workload/parallel_runner.h"

namespace accelflow::cluster {

namespace {
/** Mixes values into a 64-bit hash (splitmix-style finalizer): derives
 *  per-shard seeds from the experiment's without correlating streams. */
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}
}  // namespace

/** One cross-shard RPC hop, parked in the sender's outbox until the next
 *  window barrier merges it into the destination calendar. */
struct Datacenter::Message {
  enum Kind : std::uint8_t { kRequest, kReply };
  Kind kind = kRequest;
  std::uint32_t src = 0;      ///< Sending shard.
  std::uint32_t dst = 0;      ///< Receiving shard.
  sim::TimePs sent = 0;       ///< Simulated send time.
  std::uint64_t bytes = 0;    ///< Wire size (request or response payload).
  std::uint64_t rpc_id = 0;   ///< Matches a reply to its pending callback.
  std::size_t callee = 0;     ///< kRequest: target service index.
  obs::FlowId flow = 0;       ///< Caller chain (hop-span attribution).
};

/** One machine shard plus its full run_experiment()-shaped harness. */
struct Datacenter::Shard {
  std::unique_ptr<core::Machine> machine;
  core::TraceLibrary lib;
  std::unique_ptr<check::InvariantChecker> env_checker;
  check::InvariantChecker* checker = nullptr;
  std::vector<std::unique_ptr<workload::Service>> services;
  std::unique_ptr<core::Orchestrator> orch;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<workload::RequestEngine> engine;
  std::vector<std::unique_ptr<workload::LoadGenerator>> gens;
  std::vector<double> gen_rates;
  /** Per-shard QoS boundary: each shard guards its own arrivals and caps
   *  its own package power (DESIGN.md §19). Null when the run carries no
   *  policy / power budget. */
  std::unique_ptr<qos::AdmissionController> admission;
  std::unique_ptr<qos::PowerGovernor> governor;

  /** Local vs remote decision stream for nested RPCs (shard-private, so
   *  draws happen race-free on the shard's own worker thread). */
  sim::Rng remote_rng{0};
  /** Messages sent this window, merged (and cleared) at the barrier. */
  std::vector<Message> outbox;
  /** In-flight outbound RPCs: id -> continuation fired by the reply. */
  std::unordered_map<std::uint64_t, std::function<void(std::uint64_t)>>
      pending;
  std::uint64_t next_rpc = 0;     ///< Outbound RPC id cursor.
  std::uint64_t remote_sent = 0;  ///< Nested calls that went remote (ever).

  // Measurement baselines captured by reset_stats() so harvest() reports
  // the measured window only (generators have no reset of their own).
  std::uint64_t admitted_base = 0;
  std::uint64_t generated_base = 0;
  std::uint64_t remote_base = 0;
};

/** The whole-cluster fork checkpoint (ClusterSession). */
struct Datacenter::ForkState {
  struct PerShard {
    core::Machine::Checkpoint machine;
    std::unique_ptr<core::OrchCheckpoint> orch;
    workload::RequestEngine::Checkpoint engine;
    std::vector<workload::LoadGenerator::Checkpoint> gens;
    check::InvariantChecker::Checkpoint checker;
    fault::FaultInjector::Checkpoint injector;
    qos::AdmissionController::Checkpoint admission;
    qos::PowerGovernor::Checkpoint governor;
    std::array<std::uint64_t, 4> remote_rng{};
    std::uint64_t next_rpc = 0;
  };
  std::vector<PerShard> shards;
  RackNetwork::Checkpoint rack;
};

/**
 * Persistent window workers. Windows are short (one lookahead of simulated
 * time), so thread-per-window would drown in spawn cost; instead helpers
 * park in a spin-then-yield wait on a generation counter and claim shards
 * from a shared cursor each time the coordinator opens a window. The
 * coordinator participates too, and completion is detected by counting
 * finished *shards* (not workers), which makes stragglers from a previous
 * generation harmless: at worst they claim work of the new one.
 */
class Datacenter::ShardPool {
 public:
  ShardPool(std::size_t shards, unsigned threads) : shards_(shards) {
    const unsigned helpers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(helpers);
    for (unsigned w = 0; w < helpers; ++w) {
      workers_.emplace_back([this] { helper_loop(); });
    }
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  ~ShardPool() {
    quit_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : workers_) t.join();
  }

  /** Runs fn(shard) for every shard; returns when all completed. */
  void run(const std::function<void(std::size_t)>& fn) {
    // Order matters: job before next (its release-store publishes the
    // pointer to any straggler that claims early), generation last.
    job_.store(&fn, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    claim();
    while (completed_.load(std::memory_order_acquire) < shards_) {
      std::this_thread::yield();
    }
    if (error_ != nullptr) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
  }

 private:
  void claim() {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
      if (i >= shards_) break;
      const auto* fn = job_.load(std::memory_order_relaxed);
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
      completed_.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  void helper_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t gen = generation_.load(std::memory_order_acquire);
      unsigned spins = 0;
      while (gen == seen) {
        // Hot runs reopen windows within microseconds: yield first, and
        // only drop to a sleep when the pool has clearly gone idle.
        if (++spins < 4096) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        gen = generation_.load(std::memory_order_acquire);
      }
      seen = gen;
      if (quit_.load(std::memory_order_acquire)) return;
      claim();
    }
  }

  std::size_t shards_;
  std::atomic<const std::function<void(std::size_t)>*> job_{nullptr};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<bool> quit_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

Datacenter::Datacenter(const ClusterConfig& config, bool fork_mode)
    : config_(config), fork_mode_(fork_mode) {
  assert(config_.shards > 0);
  const workload::ExperimentConfig& e = config_.experiment;

  balancer_ = std::make_unique<Balancer>(config_.policy, config_.shards,
                                         mix(e.seed, 0xB417CE));
  rack_ = std::make_unique<RackNetwork>(config_.rack, config_.shards);

  // Fork mode cuts the replicated streams at warmup so prepare() can
  // drain to quiescence; run_point() revives them per point.
  const sim::TimePs issue_until =
      fork_mode_ ? e.warmup : e.warmup + e.measure;

  // QoS (DESIGN.md §19): one policy cluster-wide, one admission boundary
  // and power governor per shard — exactly run_experiment()'s attachments
  // replicated, so the 1-shard conformance identity holds under QoS too.
  const qos::QosPolicy qos_policy = workload::resolve_qos_policy(e);
  core::EngineConfig engine_config = e.engine;
  if (qos_policy.enabled()) engine_config.qos = qos_policy;

  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto sh = std::make_unique<Shard>();
    // Shard 0 replicates run_experiment()'s construction *exactly* —
    // unperturbed machine/engine/fault seeds — which is what makes the
    // 1-shard Datacenter byte-identical to the bare harness (the
    // conformance oracle). Shards beyond 0 derive decorrelated seeds.
    core::MachineConfig mc = workload::with_qos(e.machine, qos_policy);
    if (i > 0) mc.seed = mix(mc.seed, 0x5AD0 + i);
    sh->machine = std::make_unique<core::Machine>(mc);
    if (i == 0 && e.tracer != nullptr) sh->machine->set_tracer(e.tracer);
    core::register_templates(sh->lib);
    workload::register_relief_traces(sh->lib);

    // The config's checker is single-simulation state: shard 0 only.
    // Under AF_CHECK every shard audits itself with an internal one.
    sh->checker = (i == 0) ? e.checker : nullptr;
    if (sh->checker == nullptr && workload::af_check_enabled()) {
      sh->env_checker = std::make_unique<check::InvariantChecker>();
      sh->checker = sh->env_checker.get();
    }
    if (sh->checker != nullptr) sh->checker->attach(*sh->machine, sh->lib);

    sh->services = workload::build_services(e.specs, sh->lib);
    std::vector<workload::Service*> service_ptrs;
    for (auto& s : sh->services) service_ptrs.push_back(s.get());

    sh->orch = core::make_orchestrator(e.kind, *sh->machine, sh->lib,
                                       engine_config);

    // Fault injection: config plan or AF_FAULTS, engine-family only —
    // exactly run_experiment()'s policy. Shard faults are independent
    // streams (shard 0 keeps the plan's seed for conformance).
    fault::FaultPlan plan = e.faults;
    if (!plan.enabled()) {
      const double rate = workload::af_fault_rate();
      if (rate > 0) plan = fault::FaultPlan::uniform(rate);
    }
    if (plan.enabled() && sh->orch->engine() != nullptr) {
      if (i > 0) plan.seed = mix(plan.seed, 0xFA010 + i);
      sh->injector =
          std::make_unique<fault::FaultInjector>(sh->machine->sim(), plan);
      sh->machine->set_fault_hooks(sh->injector.get());
    }

    const std::uint64_t engine_seed =
        i == 0 ? e.seed : mix(e.seed, 0xE191E + i);
    sh->engine = std::make_unique<workload::RequestEngine>(
        *sh->machine, *sh->orch, service_ptrs, engine_seed);
    if (!e.step_deadline_budgets.empty()) {
      sh->engine->set_step_deadline_budgets(e.step_deadline_budgets);
    } else {
      sh->engine->set_step_deadline_budget(e.step_deadline_budget);
    }

    // Replicated arrival streams: *identical* generator seeds on every
    // shard, so all shards agree on the arrival calendar and the router
    // alone decides ownership (see workload::ArrivalRouter).
    for (std::size_t s = 0; s < sh->services.size(); ++s) {
      const double rps = e.per_service_rps.empty()
                             ? e.rps_per_service
                             : e.per_service_rps[s];
      if (rps <= 0) continue;
      sh->gens.push_back(std::make_unique<workload::LoadGenerator>(
          sh->machine->sim(), *sh->engine, s, e.load_model, rps, issue_until,
          e.seed ^ (0x10AD + 1315423911ull * (s + 1))));
      sh->gen_rates.push_back(rps);
    }

    if (qos_policy.enabled()) {
      sh->admission = std::make_unique<qos::AdmissionController>(
          sh->machine->sim(), qos_policy);
      sh->engine->set_admission(sh->admission.get());
      for (auto& g : sh->gens) g->set_admission(sh->admission.get());
    }
    if (e.power.budget_w > 0.0) {
      sh->governor =
          std::make_unique<qos::PowerGovernor>(*sh->machine, e.power);
      // Fork mode stops governing at the warmup horizon so the calendar
      // drains to quiescence; run_point() re-arms it per point.
      sh->governor->start(fork_mode_ ? e.warmup
                                     : e.warmup + e.measure + e.drain);
    }

    if (config_.shards > 1) {
      for (auto& g : sh->gens) g->set_router(balancer_.get(), i);
      // Re-route a slice of nested RPCs across the rack: replace the
      // RequestEngine's machine-local injector with one that draws a
      // local/remote decision per call. Same callee universe.
      if (config_.remote_rpc_fraction > 0.0) {
        for (auto& svc : sh->services) {
          if (svc->callee_indices().empty()) continue;
          const double rtt = svc->spec().rpc_wire_rtt_us;
          std::vector<std::size_t> callees = svc->callee_indices();
          const std::size_t shard_idx = i;
          svc->set_nested_injector(
              [this, shard_idx, rtt](
                  core::ChainContext& ctx, std::size_t callee,
                  std::function<void(std::uint64_t)> deliver) {
                route_nested(shard_idx, rtt, ctx, callee,
                             std::move(deliver));
              },
              std::move(callees));
        }
      }
      sh->remote_rng = sim::Rng(mix(e.seed, 0x2E30 + i));
    }

    shards_.push_back(std::move(sh));
  }

  threads_ = config_.threads != 0
                 ? config_.threads
                 : std::min<unsigned>(
                       static_cast<unsigned>(config_.shards),
                       workload::ParallelRunner::default_threads());
  if (threads_ < 1) threads_ = 1;
  if (config_.shards > 1 && threads_ > 1) {
    pool_ = std::make_unique<ShardPool>(config_.shards, threads_);
  }
}

Datacenter::~Datacenter() {
  for (auto& sh : shards_) {
    if (sh->checker != nullptr) sh->checker->detach();
  }
}

std::size_t Datacenter::shards() const { return shards_.size(); }

core::Machine& Datacenter::machine(std::size_t shard) {
  return *shards_[shard]->machine;
}

workload::RequestEngine& Datacenter::engine(std::size_t shard) {
  return *shards_[shard]->engine;
}

bool Datacenter::prepared() const { return fork_ != nullptr; }

void Datacenter::run_window(sim::TimePs horizon) {
  const std::function<void(std::size_t)> advance = [this,
                                                    horizon](std::size_t i) {
    shards_[i]->machine->sim().run_until(horizon);
  };
  if (pool_ != nullptr) {
    pool_->run(advance);
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) advance(i);
  }
}

void Datacenter::barrier_sync() {
  // Merge outboxes in (shard, push) order — a fixed total order, so the
  // rack's latency/fault draws and the destination calendar insertions
  // are identical for every thread count.
  for (auto& sh : shards_) {
    for (const Message& m : sh->outbox) deliver_message(m);
    sh->outbox.clear();
  }
  // Refresh the JSQ snapshot once per window: the bounded staleness a
  // real balancer's load-report loop has, and the only balancer state
  // route() reads — updated here, between windows, never during one.
  std::vector<std::uint64_t> load(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    load[i] = shards_[i]->engine->in_flight();
  }
  balancer_->update_load(std::move(load));
}

void Datacenter::deliver_message(const Message& m) {
  const sim::TimePs latency = rack_->hop_latency(m.src, m.dst, m.bytes);
  const sim::TimePs arrival = m.sent + latency;
  // The hop span lands on the tracer of the shard owning the caller's
  // flow (requests go out from it, replies come home to it); only shards
  // with a tracer attached record anything. tid = the far shard, so each
  // peer gets its own track under the net process.
  Shard& flow_owner = *shards_[m.kind == Message::kRequest ? m.src : m.dst];
  if (obs::Tracer* tr = flow_owner.machine->tracer()) {
    const std::uint32_t far =
        m.kind == Message::kRequest ? m.dst : m.src;
    tr->complete(obs::Subsys::kNet, obs::SpanKind::kNetHop, far, m.sent,
                 arrival, m.bytes, m.flow);
  }
  Shard& dst = *shards_[m.dst];
  assert(arrival >= dst.machine->sim().now() &&
         "lookahead violation: message arrives inside a computed window");
  if (m.kind == Message::kRequest) {
    const std::size_t dst_idx = m.dst;
    const std::uint32_t src_idx = m.src;
    const std::uint64_t rpc_id = m.rpc_id;
    const std::size_t callee = m.callee;
    const obs::FlowId flow = m.flow;
    dst.machine->sim().schedule_at(
        arrival, [this, dst_idx, src_idx, rpc_id, callee, flow] {
          // Serve the sub-request locally on the destination shard; its
          // completion posts the reply hop back through the outbox.
          shards_[dst_idx]->engine->inject_internal(
              callee, 0.0,
              [this, dst_idx, src_idx, rpc_id,
               flow](std::uint64_t resp_bytes) {
                Shard& d = *shards_[dst_idx];
                Message reply;
                reply.kind = Message::kReply;
                reply.src = static_cast<std::uint32_t>(dst_idx);
                reply.dst = src_idx;
                reply.sent = d.machine->sim().now();
                reply.bytes = resp_bytes;
                reply.rpc_id = rpc_id;
                reply.flow = flow;
                d.outbox.push_back(reply);
              });
        });
  } else {
    const std::size_t dst_idx = m.dst;
    const std::uint64_t rpc_id = m.rpc_id;
    const std::uint64_t resp_bytes = m.bytes;
    dst.machine->sim().schedule_at(
        arrival, [this, dst_idx, rpc_id, resp_bytes] {
          Shard& d = *shards_[dst_idx];
          auto it = d.pending.find(rpc_id);
          assert(it != d.pending.end() && "reply for unknown RPC");
          auto deliver = std::move(it->second);
          d.pending.erase(it);
          deliver(resp_bytes);
        });
  }
}

void Datacenter::route_nested(std::size_t src, double rtt_us,
                              core::ChainContext& ctx, std::size_t callee,
                              std::function<void(std::uint64_t)> deliver) {
  Shard& sh = *shards_[src];
  const bool remote = shards_.size() > 1 &&
                      sh.remote_rng.bernoulli(config_.remote_rpc_fraction);
  if (!remote) {
    // The machine-local path the RequestEngine would have taken.
    sh.engine->inject_internal(callee, rtt_us, std::move(deliver));
    return;
  }
  // Uniform choice among the other shards; both draws come from the
  // shard-private stream, so this runs race-free on the shard's thread.
  const std::size_t other = sh.remote_rng.next_below(shards_.size() - 1);
  const std::size_t dst = other >= src ? other + 1 : other;
  const std::uint64_t rpc_id =
      (static_cast<std::uint64_t>(src) << 48) | sh.next_rpc++;
  sh.pending.emplace(rpc_id, std::move(deliver));
  ++sh.remote_sent;
  Message m;
  m.kind = Message::kRequest;
  m.src = static_cast<std::uint32_t>(src);
  m.dst = static_cast<std::uint32_t>(dst);
  m.sent = sh.machine->sim().now();
  m.bytes = rack_->params().request_bytes;
  m.rpc_id = rpc_id;
  m.callee = callee;
  m.flow = obs::flow_id(ctx.request, ctx.chain);
  sh.outbox.push_back(std::move(m));
}

void Datacenter::advance_to(sim::TimePs target) {
  if (shards_.size() == 1) {
    // One shard has nobody to talk to: no windows, no barriers — the
    // exact run_until() call run_experiment() makes (conformance).
    shards_[0]->machine->sim().run_until(target);
    now_ = target;
    return;
  }
  const sim::TimePs lookahead = rack_->lookahead();
  while (now_ < target) {
    sim::TimePs horizon = std::min<sim::TimePs>(target, now_ + lookahead);
    // Next-event probe: with every outbox empty nothing is on the wire,
    // so a window no shard has a calendar entry in would run and merge
    // nothing — hop straight to the window holding the earliest pending
    // event (or to the target). Causally safe and deterministic for the
    // same reason as drain_quiescent()'s hop, and cheap under either
    // kernel backend: next_event_time() is the heap root or the wheel's
    // cached peek (DESIGN.md §18). The skipped barriers were no-ops — no
    // messages to merge, and a JSQ refresh with in-flight counts nothing
    // changed.
    bool wire = false;
    sim::TimePs next = sim::Simulator::kNoEvent;
    for (const auto& sh : shards_) {
      wire = wire || !sh->outbox.empty();
      next = std::min(next, sh->machine->sim().next_event_time());
    }
    if (!wire && next > horizon) {
      now_ = std::min(target, next);
      horizon = std::min<sim::TimePs>(target, now_ + lookahead);
      // Still run the (possibly empty, possibly final) window below so
      // every shard's clock lands on the horizon.
    }
    run_window(horizon);
    barrier_sync();
    now_ = horizon;
  }
}

bool Datacenter::quiescent() const {
  for (const auto& sh : shards_) {
    if (sh->machine->sim().pending_events() != 0) return false;
    if (!sh->outbox.empty() || !sh->pending.empty()) return false;
  }
  return true;
}

void Datacenter::drain_quiescent() {
  const sim::TimePs lookahead = rack_->lookahead();
  std::uint64_t guard = 0;
  while (!quiescent()) {
    // Fast-forward idle gaps (e.g. a fault-retry backoff timer seconds
    // out): with every outbox empty nothing is on the wire, so the next
    // global event is the earliest calendar entry and hopping straight
    // to it is causally safe — and deterministic, since the hop depends
    // only on simulated state.
    bool wire = false;
    sim::TimePs next = sim::Simulator::kNoEvent;
    for (const auto& sh : shards_) {
      wire = wire || !sh->outbox.empty();
      next = std::min(next, sh->machine->sim().next_event_time());
    }
    if (!wire && next != sim::Simulator::kNoEvent && next > now_) {
      now_ = next;
    }
    advance_to(now_ + lookahead);
    ++guard;
    assert(guard < (1ull << 32) && "cluster does not quiesce");
  }
}

void Datacenter::reset_stats() {
  for (auto& sh : shards_) {
    sh->engine->reset_stats();
    if (sh->injector != nullptr) sh->injector->reset_stats();
    if (sh->admission != nullptr) sh->admission->reset_stats();
    if (sh->governor != nullptr) sh->governor->reset_stats();
    std::uint64_t admitted = 0;
    std::uint64_t generated = 0;
    for (const auto& g : sh->gens) {
      admitted += g->admitted();
      generated += g->generated();
    }
    sh->admitted_base = admitted;
    sh->generated_base = generated;
    sh->remote_base = sh->remote_sent;
  }
  rack_->reset_stats();
}

ClusterResult Datacenter::run() {
  assert(!fork_mode_ && "run() is the straight-through protocol");
  assert(!ran_ && "run() already called");
  ran_ = true;
  const workload::ExperimentConfig& e = config_.experiment;
  // Warmup, reset the recorders, then measure + drain: run_experiment()'s
  // protocol applied cluster-wide.
  advance_to(e.warmup);
  reset_stats();
  advance_to(e.warmup + e.measure + e.drain);
  if (config_.drain_to_quiescence) {
    // Soak protocol: past the nominal horizon, keep opening windows until
    // every calendar, outbox and pending-RPC map is empty, so "zero lost
    // chains" is decidable — a fixed horizon can strand a fault-retried
    // chain (or its reply) in the final lookahead window.
    if (shards_.size() == 1) {
      shards_[0]->machine->sim().run();
      now_ = shards_[0]->machine->sim().now();
    } else {
      drain_quiescent();
    }
  }
  ClusterResult out = harvest();
  final_audits();
  // Under AF_CHECK=1 a traced run also audits critical-path conservation,
  // now including the network category's hop spans (critpath.h).
  if (e.tracer != nullptr && workload::af_check_enabled()) {
    critpath::Analyzer audit;
    audit.analyze(*e.tracer);
    if (!audit.violations().empty()) {
      std::fprintf(stderr,
                   "AF_CHECK: critical-path conservation violated "
                   "(%zu chains)\n",
                   audit.violations().size());
      for (const std::string& v : audit.violations()) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      std::abort();
    }
  }
  return out;
}

void Datacenter::prepare() {
  assert(fork_mode_ && "prepare() requires fork mode");
  assert(fork_ == nullptr && "prepare() already called");
  const workload::ExperimentConfig& e = config_.experiment;
  advance_to(e.warmup);
  if (shards_.size() == 1) {
    // Drain exactly as SweepSession does: run to an empty calendar.
    shards_[0]->machine->sim().run();
    now_ = shards_[0]->machine->sim().now();
  } else {
    // Drain to *global* quiescence: keep opening windows until every
    // calendar, outbox and pending-RPC map is empty. Window boundaries
    // depend only on simulated state, so the fork time is deterministic.
    drain_quiescent();
  }
  t_fork_ = now_;

  fork_ = std::make_unique<ForkState>();
  fork_->rack = rack_->checkpoint();
  fork_->shards.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    ForkState::PerShard& f = fork_->shards[i];
    sh.machine->checkpoint(f.machine);
    f.orch = sh.orch->save_checkpoint();
    f.engine = sh.engine->checkpoint();
    f.gens.reserve(sh.gens.size());
    for (const auto& g : sh.gens) f.gens.push_back(g->checkpoint());
    if (sh.checker != nullptr) f.checker = sh.checker->checkpoint();
    if (sh.injector != nullptr) f.injector = sh.injector->checkpoint();
    if (sh.admission != nullptr) f.admission = sh.admission->checkpoint();
    if (sh.governor != nullptr) f.governor = sh.governor->checkpoint();
    f.remote_rng = sh.remote_rng.state();
    f.next_rpc = sh.next_rpc;
  }
}

ClusterResult Datacenter::run_point(double rate_factor) {
  assert(fork_ != nullptr && "call prepare() before run_point()");
  rack_->restore(fork_->rack);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    const ForkState::PerShard& f = fork_->shards[i];
    sh.machine->restore(f.machine);
    sh.orch->restore_checkpoint(*f.orch);
    sh.engine->restore(f.engine);
    for (std::size_t g = 0; g < sh.gens.size(); ++g) {
      sh.gens[g]->restore(f.gens[g]);
    }
    if (sh.checker != nullptr) sh.checker->restore(f.checker);
    if (sh.injector != nullptr) sh.injector->restore(f.injector);
    if (sh.admission != nullptr) sh.admission->restore(f.admission);
    if (sh.governor != nullptr) sh.governor->restore(f.governor);
    sh.remote_rng.set_state(f.remote_rng);
    sh.next_rpc = f.next_rpc;
    sh.outbox.clear();
    sh.pending.clear();
  }
  now_ = t_fork_;

  reset_stats();
  const workload::ExperimentConfig& e = config_.experiment;
  const sim::TimePs issue_until = t_fork_ + e.measure;
  for (auto& sh : shards_) {
    for (std::size_t g = 0; g < sh->gens.size(); ++g) {
      sh->gens[g]->resume(sh->gen_rates[g] * rate_factor, issue_until);
    }
    if (sh->governor != nullptr) {
      sh->governor->resume(issue_until + e.drain);
    }
  }
  advance_to(issue_until + e.drain);
  ClusterResult out = harvest();
  final_audits();
  return out;
}

ClusterResult Datacenter::harvest() {
  ClusterResult out;
  out.shards.reserve(shards_.size());
  out.admitted.reserve(shards_.size());
  std::uint64_t decisions = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    out.shards.push_back(workload::harvest_result(
        *sh.machine, *sh.orch, *sh.engine,
        i == 0 ? config_.experiment.metrics : nullptr));
    if (sh.injector != nullptr) {
      out.shards.back().faults = sh.injector->stats();
      if (i == 0 && config_.experiment.metrics != nullptr) {
        sh.injector->snapshot_metrics(*config_.experiment.metrics);
      }
    }
    if (sh.admission != nullptr) {
      out.shards.back().qos_tenants = sh.admission->tenant_stats();
      out.shards.back().qos_shed_total = sh.admission->total_shed();
      if (i == 0 && config_.experiment.metrics != nullptr) {
        sh.admission->snapshot_metrics(*config_.experiment.metrics);
      }
    }
    if (sh.governor != nullptr) {
      out.shards.back().power = sh.governor->stats();
      if (i == 0 && config_.experiment.metrics != nullptr) {
        sh.governor->snapshot_metrics(*config_.experiment.metrics);
      }
    }
    std::uint64_t admitted = 0;
    std::uint64_t generated = 0;
    for (const auto& g : sh.gens) {
      admitted += g->admitted();
      generated += g->generated();
    }
    out.admitted.push_back(admitted - sh.admitted_base);
    // The streams are replicated, so shard 0's arrival count is *the*
    // cluster arrival count: each arrival is one routing decision.
    if (i == 0) decisions = generated - sh.generated_base;
    out.remote_rpcs += sh.remote_sent - sh.remote_base;
  }
  out.network = rack_->stats();
  if (shards_.size() > 1) {
    out.balancer_decisions = decisions;
    out.balancer_busy =
        static_cast<sim::TimePs>(decisions) * Balancer::decision_cost_ps();
  }
  out.elapsed = shards_[0]->machine->sim().now();
  return out;
}

void Datacenter::final_audits() {
  for (auto& sh : shards_) {
    if (sh->checker == nullptr) continue;
    sh->checker->final_audit();
    if (sh->env_checker != nullptr && !sh->checker->ok()) {
      std::fprintf(stderr, "AF_CHECK: invariant violations detected\n%s",
                   sh->checker->report().c_str());
      std::abort();
    }
  }
}

}  // namespace accelflow::cluster
