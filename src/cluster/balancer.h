#ifndef ACCELFLOW_CLUSTER_BALANCER_H_
#define ACCELFLOW_CLUSTER_BALANCER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "accel/types.h"
#include "sim/time.h"
#include "workload/load_generator.h"

/**
 * @file
 * The load-balancer tier of a sharded datacenter (DESIGN.md §17).
 *
 * Every shard runs *replicated* arrival streams (see
 * workload::ArrivalRouter); the Balancer is the pure ownership function
 * those streams consult. Three routing policies mirror what production
 * L4/L7 tiers deploy:
 *
 *  - round-robin: arrival `seq` of each service cycles through the live
 *    shards — the stateless baseline;
 *  - least-loaded (join-the-shortest-queue): the shard with the fewest
 *    in-flight requests in the *barrier-synchronized* load snapshot wins
 *    (ties to the lowest index). The snapshot is refreshed once per
 *    conservative-lookahead window, modeling the bounded staleness a real
 *    LB's health-check/load-report loop has;
 *  - consistent-hash: each (service, seq) key hashes onto a ring of
 *    virtual nodes, so removing a shard remaps only the keys that shard
 *    owned (~1/N of them) — the session-affinity policy.
 *
 * Determinism contract: route() mutates nothing and reads only state that
 * is updated between windows (never during one), so concurrent calls from
 * every shard's replicated generators return identical answers regardless
 * of thread count or call order.
 *
 * The paper's LdB accelerator (Intel DLB, Table II) is the hardware that
 * executes this decision; its modeled per-decision cost is reported as
 * tier occupancy (decision_cost_ps/tier capacity) rather than perturbing
 * the arrival calendar — the decision is pipelined off the request's
 * critical path, which is what DLB's enqueue offload achieves.
 */

namespace accelflow::cluster {

/** Routing policy of the load-balancer tier. */
enum class BalancePolicy : std::uint8_t {
  kRoundRobin = 0,   ///< seq cycles through live shards.
  kLeastLoaded = 1,  ///< Fewest in-flight in the last load snapshot.
  kConsistentHash = 2,  ///< Ring hash of (service, seq); affinity.
};

/** Number of BalancePolicy values (array sizing). */
inline constexpr std::size_t kNumBalancePolicies = 3;

/** Stable snake_case name of a policy (bench JSON keys, CLI flags). */
constexpr std::string_view name_of(BalancePolicy p) {
  constexpr std::string_view kNames[kNumBalancePolicies] = {
      "round_robin", "least_loaded", "consistent_hash"};
  return kNames[static_cast<std::size_t>(p)];
}

/** The shard-ownership function of the load-balancer tier. */
class Balancer : public workload::ArrivalRouter {
 public:
  /** Virtual nodes per shard on the consistent-hash ring: enough that
   *  per-shard key shares concentrate near 1/N (CV ~ 1/sqrt(vnodes)). */
  static constexpr std::size_t kVnodesPerShard = 64;

  /**
   * @param policy routing policy.
   * @param shards total shard count; all start live.
   * @param seed perturbs the hash-ring point placement only (routing for
   *        kRoundRobin/kLeastLoaded is seed-free).
   */
  Balancer(BalancePolicy policy, std::size_t shards,
           std::uint64_t seed = 0xB417CE);

  BalancePolicy policy() const { return policy_; }
  std::size_t shards() const { return shards_; }
  const std::vector<std::size_t>& live_shards() const { return live_; }

  /**
   * Restricts routing to `live` (ascending shard indices). Rebuilds the
   * hash ring from the surviving shards' unchanged vnode positions, so
   * keys owned by survivors keep their owner — the consistent-hash remap
   * bound (tests/test_cluster_balancer.cc). Call only between windows.
   */
  void set_live_shards(std::vector<std::size_t> live);

  /**
   * Refreshes the least-loaded snapshot (in-flight requests per shard,
   * indexed by shard). Called by the Datacenter at every window barrier;
   * concurrent route() calls never observe a half-written update because
   * no window is running during a barrier.
   */
  void update_load(std::vector<std::uint64_t> load);

  /** The current load snapshot (tests). */
  const std::vector<std::uint64_t>& load() const { return load_; }

  /** workload::ArrivalRouter: the owning shard of arrival (service, seq).
   *  Pure: reads only barrier-updated state, mutates nothing. */
  std::size_t route(std::size_t service, std::uint64_t seq,
                    sim::TimePs now) const override;

  /**
   * Modeled cost of one routing decision on the LdB accelerator: the
   * baseline CPU enqueue/steering cost divided by LdB's calibrated
   * speedup (accel::default_speedup). Used for tier-occupancy reporting
   * (BENCH_cluster.json), not for calendar perturbation.
   */
  static sim::TimePs decision_cost_ps();

 private:
  /** One point on the consistent-hash ring. */
  struct RingPoint {
    std::uint64_t point = 0;     ///< Position on the 2^64 ring.
    std::uint32_t shard = 0;     ///< Owning shard.
  };

  void rebuild_ring();

  BalancePolicy policy_;
  std::size_t shards_;
  std::uint64_t seed_;
  std::vector<std::size_t> live_;        ///< Ascending live shard indices.
  std::vector<std::uint64_t> load_;      ///< In-flight per shard (JSQ).
  std::vector<RingPoint> ring_;          ///< Sorted hash ring (live only).
};

}  // namespace accelflow::cluster

#endif  // ACCELFLOW_CLUSTER_BALANCER_H_
