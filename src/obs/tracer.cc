#include "obs/tracer.h"

#include <cinttypes>
#include <cstdio>

namespace accelflow::obs {

namespace {

/** Chrome-trace pid of a subsystem (pids are 1-based for readability). */
int pid_of(Subsys s) { return static_cast<int>(s) + 1; }

/** Formats picoseconds as microseconds with ns precision ("12.345"). */
void write_ts(std::ostream& os, sim::TimePs ps) {
  // Fixed %.3f formatting keeps export byte-stable across platforms for
  // the golden-file test (ostream double formatting is locale-sensitive).
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ps / 1'000'000,
                static_cast<unsigned>((ps / 1'000) % 1'000));
  os << buf;
}

void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

Tracer::Tracer(std::size_t capacity) { ring_.resize(capacity ? capacity : 1); }

void Tracer::push(const SpanEvent& ev) {
  ++recorded_;
  if (size_ == ring_.size()) {
    // Full: overwrite the oldest event (flight-recorder semantics).
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
    return;
  }
  ring_[(head_ + size_) % ring_.size()] = ev;
  ++size_;
}

void Tracer::complete(Subsys subsys, SpanKind kind, std::uint32_t tid,
                      sim::TimePs begin, sim::TimePs end, std::uint64_t arg,
                      FlowId flow) {
  SpanEvent ev;
  ev.ts = begin;
  ev.dur = end > begin ? end - begin : 0;
  ev.flow = flow != 0 ? flow : current_flow_;
  ev.arg = arg;
  ev.tid = tid;
  ev.subsys = subsys;
  ev.kind = kind;
  ev.phase = Phase::kComplete;
  push(ev);
}

void Tracer::instant(Subsys subsys, SpanKind kind, std::uint32_t tid,
                     sim::TimePs at, std::uint64_t arg, FlowId flow) {
  SpanEvent ev;
  ev.ts = at;
  ev.flow = flow != 0 ? flow : current_flow_;
  ev.arg = arg;
  ev.tid = tid;
  ev.subsys = subsys;
  ev.kind = kind;
  ev.phase = Phase::kInstant;
  push(ev);
}

void Tracer::flow(Phase phase, Subsys subsys, std::uint32_t tid,
                  sim::TimePs at, FlowId id) {
  SpanEvent ev;
  ev.ts = at;
  ev.flow = id;
  ev.tid = tid;
  ev.subsys = subsys;
  ev.kind = SpanKind::kChain;
  ev.phase = phase;
  push(ev);
}

void Tracer::name_thread(Subsys subsys, std::uint32_t tid, std::string name) {
  thread_names_[{static_cast<std::uint8_t>(subsys), tid}] = std::move(name);
}

void Tracer::export_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: one process per subsystem, plus every registered thread name.
  for (std::size_t s = 0; s < kNumSubsys; ++s) {
    const auto subsys = static_cast<Subsys>(s);
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid_of(subsys)
       << ",\"args\":{\"name\":\"" << name_of(subsys) << "\"}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
       << pid_of(static_cast<Subsys>(key.first)) << ",\"tid\":" << key.second
       << ",\"args\":{\"name\":\"";
    write_escaped(os, name);
    os << "\"}}";
  }

  for_each([&](const SpanEvent& ev) {
    sep();
    const int pid = pid_of(ev.subsys);
    switch (ev.phase) {
      case Phase::kComplete:
      case Phase::kInstant: {
        const bool is_x = ev.phase == Phase::kComplete;
        os << "{\"name\":\"" << name_of(ev.kind) << "\",\"cat\":\""
           << name_of(ev.subsys) << "\",\"ph\":\"" << (is_x ? 'X' : 'i')
           << "\",\"ts\":";
        write_ts(os, ev.ts);
        if (is_x) {
          os << ",\"dur\":";
          write_ts(os, ev.dur);
        } else {
          os << ",\"s\":\"t\"";  // Thread-scoped instant.
        }
        os << ",\"pid\":" << pid << ",\"tid\":" << ev.tid << ",\"args\":{";
        os << "\"flow\":" << ev.flow;
        if (ev.arg != 0) os << ",\"arg\":" << ev.arg;
        os << "}}";
        break;
      }
      case Phase::kFlowBegin:
      case Phase::kFlowStep:
      case Phase::kFlowEnd: {
        const char ph = ev.phase == Phase::kFlowBegin  ? 's'
                        : ev.phase == Phase::kFlowStep ? 't'
                                                       : 'f';
        os << "{\"name\":\"chain\",\"cat\":\"flow\",\"ph\":\"" << ph
           << "\",\"id\":" << ev.flow << ",\"ts\":";
        write_ts(os, ev.ts);
        os << ",\"pid\":" << pid << ",\"tid\":" << ev.tid;
        // Binding point "enclosing slice" renders the chain arrows from
        // span to span rather than from instant markers.
        if (ph == 'f') os << ",\"bp\":\"e\"";
        os << "}";
        break;
      }
    }
  });

  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace accelflow::obs
