#ifndef ACCELFLOW_OBS_DRAIN_PACK_H_
#define ACCELFLOW_OBS_DRAIN_PACK_H_

#include <cstdint>

/**
 * @file
 * Packing of the kBatchDrain instant's 64-bit arg, shared between the
 * recorder (accel::Accelerator::run_drain) and offline consumers
 * (tools/trace_summary).
 *
 * The arg carries two numbers in one word: the drain's summed ring
 * residency (picoseconds the completion actions sat in the DrainRing) in
 * the upper 48 bits, and the batch width (actions drained) in the lower
 * 16. Both fields *saturate* at their packing limits rather than wrap —
 * a pathological soak run whose summed residency exceeds 2^48 ps (~78
 * hours of accumulated slack in one drain) reports the ceiling, never a
 * small bogus value.
 *
 * Consumers must parse the arg as an exact 64-bit integer: a double
 * round-trips only 53 bits, so a wide wait silently loses width bits if
 * read via stod (the bug this header fixed).
 */

namespace accelflow::obs {

/** Width of the batch-width field (lower bits of the arg). */
inline constexpr unsigned kDrainWidthBits = 16;

/** Saturation ceiling of the batch-width field. */
inline constexpr std::uint64_t kDrainWidthMax =
    (std::uint64_t{1} << kDrainWidthBits) - 1;

/** Saturation ceiling of the ring-wait field (48 usable bits). */
inline constexpr std::uint64_t kDrainWaitMax =
    (std::uint64_t{1} << (64 - kDrainWidthBits)) - 1;

/** Packs (ring residency ps, batch width) into one kBatchDrain arg.
 *  Either field at or beyond its limit saturates to the ceiling. */
constexpr std::uint64_t pack_drain_arg(std::uint64_t wait_ps,
                                       std::uint64_t width) {
  const std::uint64_t w = wait_ps < kDrainWaitMax ? wait_ps : kDrainWaitMax;
  const std::uint64_t n = width < kDrainWidthMax ? width : kDrainWidthMax;
  return (w << kDrainWidthBits) | n;
}

/** Ring residency (ps) carried by a packed kBatchDrain arg. */
constexpr std::uint64_t drain_arg_wait_ps(std::uint64_t arg) {
  return arg >> kDrainWidthBits;
}

/** Batch width carried by a packed kBatchDrain arg. */
constexpr std::uint64_t drain_arg_width(std::uint64_t arg) {
  return arg & kDrainWidthMax;
}

}  // namespace accelflow::obs

#endif  // ACCELFLOW_OBS_DRAIN_PACK_H_
