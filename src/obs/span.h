#ifndef ACCELFLOW_OBS_SPAN_H_
#define ACCELFLOW_OBS_SPAN_H_

#include <cstdint>
#include <string_view>

#include "sim/time.h"

/**
 * @file
 * The span vocabulary of the observability layer: which subsystem emitted
 * an event, what lifecycle stage it describes, and the fixed-size record
 * that the ring buffer stores (see obs/tracer.h).
 *
 * Every value here is a closed enum rather than a free-form string so a
 * recorded event is a few plain words (no allocation, no hashing) and the
 * Chrome-trace names are resolved only at export time. The taxonomy is
 * documented for users in OBSERVABILITY.md; keep the two in sync.
 */

/** Observability layer: span tracing and the metrics registry. */
namespace accelflow::obs {

/**
 * The subsystem that emitted an event. Each subsystem exports as one
 * Chrome-trace "process", so Perfetto groups its tracks together.
 */
enum class Subsys : std::uint8_t {
  kEngine = 0,  ///< AccelFlow engine / orchestrators (core/).
  kAccel = 1,   ///< Accelerator hardware model (accel/accelerator).
  kDma = 2,     ///< A-DMA engine pool (accel/dma).
  kNoc = 3,     ///< Package interconnect (noc/interconnect).
  kMem = 4,     ///< Memory-side translation: TLBs + IOMMU (mem/).
  kCpu = 5,     ///< Core-side activity: interrupts, notifications.
  kNet = 6,     ///< Rack network between machine shards (cluster/).
};

/** Number of Subsys values (array sizing). */
inline constexpr std::size_t kNumSubsys = 7;

/** Stable lower-case name of a subsystem (the Chrome-trace category). */
constexpr std::string_view name_of(Subsys s) {
  constexpr std::string_view kNames[kNumSubsys] = {
      "engine", "accel", "dma", "noc", "mem", "cpu", "net"};
  return kNames[static_cast<std::size_t>(s)];
}

/**
 * What lifecycle stage of an Invocation a span describes. One kind maps to
 * one Chrome-trace event name; the set mirrors the paper's "where time
 * goes" decomposition (Figs. 11-14): queueing, dispatch, PE execution, DMA,
 * NoC hops, translation, and interrupts/completions.
 */
enum class SpanKind : std::uint8_t {
  kChain = 0,       ///< Flow-event name tying one chain's spans together.
  kEnqueue,         ///< User-mode Enqueue + initial payload DMA.
  kQueueWait,       ///< Input-queue residency (enqueue -> dispatch).
  kPeExecute,       ///< PE occupancy: wipe + spad load + compute.
  kDispatcherFsm,   ///< Output-dispatcher FSM occupancy (Figure 8).
  kDmaTransfer,     ///< One A-DMA engine moving an entry/payload.
  kNocTransfer,     ///< A package-interconnect transfer (mesh route).
  kNocLink,         ///< The inter-chiplet link leg of a transfer.
  kTlbMiss,         ///< Accelerator translation-cache miss (instant).
  kIommuWalk,       ///< IOMMU page-table walk (queueing + levels).
  kPageFault,       ///< Walk ended in a fault; OS round trip follows.
  kInterrupt,       ///< Baseline completion interrupt on a core.
  kManagerEvent,    ///< Centralized-manager occupancy (RELIEF/ablations).
  kNotify,          ///< End-of-trace result DMA + user-level notification.
  kChainDone,       ///< Control returned to the CPU (instant).
  kCpuFallback,     ///< Chain (segment) fell back to the core (instant).
  kOverflow,        ///< Entry routed via the in-memory overflow area.
  kTimeout,         ///< TCP wait-slot timeout (instant).
  kHopRetry,        ///< Lost hop re-issued by the watchdog (instant, §14).
  kBatchDrain,      ///< Vectorized completion drain (instant, arg=width).
  kNetHop,          ///< One rack-network hop between machine shards.
};

/** Number of SpanKind values (array sizing). */
inline constexpr std::size_t kNumSpanKinds = 21;

/** Stable snake_case name of a span kind (the Chrome-trace event name). */
constexpr std::string_view name_of(SpanKind k) {
  constexpr std::string_view kNames[kNumSpanKinds] = {
      "chain",          "enqueue",      "queue_wait",  "pe_execute",
      "dispatcher_fsm", "dma_transfer", "noc_transfer", "noc_link",
      "tlb_miss",       "iommu_walk",   "page_fault",  "interrupt",
      "manager_event",  "notify",       "chain_done",  "cpu_fallback",
      "overflow",       "timeout",      "hop_retry",   "batch_drain",
      "net_hop"};
  return kNames[static_cast<std::size_t>(k)];
}

/**
 * Inverse of name_of(Subsys): resolves an exported Chrome-trace category
 * back to its subsystem. Returns false (and leaves `out` untouched) for
 * unknown names — offline consumers (tools/trace_summary, the critical-
 * path pass) use this to re-ingest exported traces.
 */
constexpr bool subsys_from_name(std::string_view name, Subsys* out) {
  for (std::size_t s = 0; s < kNumSubsys; ++s) {
    if (name_of(static_cast<Subsys>(s)) == name) {
      *out = static_cast<Subsys>(s);
      return true;
    }
  }
  return false;
}

/**
 * Inverse of name_of(SpanKind): resolves an exported Chrome-trace event
 * name back to its span kind. Returns false for unknown names.
 */
constexpr bool kind_from_name(std::string_view name, SpanKind* out) {
  for (std::size_t k = 0; k < kNumSpanKinds; ++k) {
    if (name_of(static_cast<SpanKind>(k)) == name) {
      *out = static_cast<SpanKind>(k);
      return true;
    }
  }
  return false;
}

/**
 * Chrome-trace phase of a recorded event.
 *
 * kComplete ("X") carries a duration; kInstant ("i") a point in time; the
 * three flow phases ("s"/"t"/"f") link one chain's spans across threads
 * and processes into the ATM-chain arrow Perfetto draws.
 */
enum class Phase : std::uint8_t {
  kComplete = 0,  ///< "X": ts + dur.
  kInstant,       ///< "i": thread-scoped instant.
  kFlowBegin,     ///< "s": start of a flow (chain admitted).
  kFlowStep,      ///< "t": intermediate flow binding point.
  kFlowEnd,       ///< "f": end of a flow (control back on the CPU).
};

/**
 * Identifier linking every span of one Invocation (one chain execution).
 * Derived deterministically from the request id and the chain index, so a
 * traced and an untraced run agree on ids and reruns diff cleanly.
 */
using FlowId = std::uint64_t;

/** Builds the FlowId of chain `chain` of request `request`. */
constexpr FlowId flow_id(std::uint64_t request, std::uint32_t chain) {
  return (request << 8) | (chain & 0xFFu);
}

/** Conventional track (tid) on the engine process carrying centralized-
 *  manager spans (ablation round trips, baseline manager events), kept
 *  clear of the per-core tracks (which use tid = core index). */
inline constexpr std::uint32_t kManagerTid = 500;

/**
 * One recorded event. Fixed-size plain data: recording is a couple of
 * stores into the ring buffer, never an allocation (see obs/tracer.h for
 * the zero-overhead contract).
 */
struct SpanEvent {
  sim::TimePs ts = 0;    ///< Begin time (ps).
  sim::TimePs dur = 0;   ///< Duration (ps); 0 for instants/flows.
  FlowId flow = 0;       ///< Owning chain, 0 = unattributed.
  std::uint64_t arg = 0; ///< Kind-specific payload (usually bytes).
  std::uint32_t tid = 0; ///< Synthetic thread within the subsystem.
  Subsys subsys = Subsys::kEngine;  ///< Emitting subsystem (the "process").
  SpanKind kind = SpanKind::kChain; ///< Lifecycle stage.
  Phase phase = Phase::kComplete;   ///< Chrome-trace phase.
};

}  // namespace accelflow::obs

#endif  // ACCELFLOW_OBS_SPAN_H_
