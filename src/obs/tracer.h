#ifndef ACCELFLOW_OBS_TRACER_H_
#define ACCELFLOW_OBS_TRACER_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/span.h"

/**
 * @file
 * The invocation-level span tracer: a per-run ring buffer of SpanEvents
 * with Chrome trace-event JSON export (loadable in Perfetto or
 * chrome://tracing).
 *
 * Zero-overhead-when-off contract (the same discipline as sim/log.h):
 * instrumented components hold a `Tracer*` that is null by default, and
 * every instrumentation point is guarded by a single null-pointer branch.
 * No tracer object exists in an untraced run, so disabled tracing costs
 * one predictable branch per site and nothing else.
 *
 * Determinism contract: the tracer only *records*. It never schedules
 * events, samples randomness, or feeds anything back into a model, so a
 * traced run is event-for-event and bit-for-bit identical to an untraced
 * run (asserted by tests/test_obs.cc).
 *
 * Threading: one Tracer belongs to one simulation (one thread), exactly
 * like sim::Simulator. Parallel sweeps attach at most one tracer to one
 * experiment point (see workload::ExperimentConfig::tracer).
 */

namespace accelflow::obs {

/**
 * Records spans into a bounded ring buffer and exports them as Chrome
 * trace-event JSON.
 *
 * When the buffer is full the oldest events are overwritten (and counted
 * in dropped()), so a long run keeps its most recent window — the standard
 * flight-recorder behaviour for always-on tracing.
 */
class Tracer {
 public:
  /** Default ring capacity (events). ~48 bytes per event. */
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  /** Creates a tracer whose ring holds `capacity` events. */
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  // --- Recording --------------------------------------------------------

  /**
   * Records a complete span ("X") on `tid` of `subsys` covering
   * [begin, end]. `flow` = 0 attributes the span to current_flow().
   */
  void complete(Subsys subsys, SpanKind kind, std::uint32_t tid,
                sim::TimePs begin, sim::TimePs end, std::uint64_t arg = 0,
                FlowId flow = 0);

  /** Records an instant event ("i") at `at`. */
  void instant(Subsys subsys, SpanKind kind, std::uint32_t tid,
               sim::TimePs at, std::uint64_t arg = 0, FlowId flow = 0);

  /**
   * Records a flow event. Flow events bind to the nearest enclosing or
   * following slice on the same (subsys, tid), so emit them alongside a
   * complete span at the same timestamp (the engine does this at chain
   * start, every forward, and chain end).
   */
  void flow(Phase phase, Subsys subsys, std::uint32_t tid, sim::TimePs at,
            FlowId id);

  // --- Flow context -----------------------------------------------------

  /**
   * The chain currently being processed. Components below the engine
   * (DMA, NoC, IOMMU) are flow-agnostic; the engine brackets calls into
   * them with FlowScope so their spans inherit the right chain.
   */
  FlowId current_flow() const { return current_flow_; }

  /** Sets current_flow(); returns the previous value (for FlowScope). */
  FlowId set_current_flow(FlowId id) {
    return std::exchange(current_flow_, id);
  }

  // --- Track naming -----------------------------------------------------

  /** Names the Chrome-trace thread `tid` of `subsys` (e.g. "TCP.pe3"). */
  void name_thread(Subsys subsys, std::uint32_t tid, std::string name);

  // --- Introspection ----------------------------------------------------

  /** Events currently held (<= capacity()). */
  std::size_t size() const { return size_; }

  /** Ring capacity in events. */
  std::size_t capacity() const { return ring_.size(); }

  /** Events overwritten because the ring was full. */
  std::uint64_t dropped() const { return dropped_; }

  /**
   * Discards all buffered events and resets the recording counters and
   * flow context; capacity and thread names are kept. Recording-side
   * state only — clearing between measurement windows (the auto-tuner
   * does this before every forked probe) never perturbs the simulation,
   * exactly like recording itself.
   */
  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    recorded_ = 0;
    current_flow_ = 0;
  }

  /** Total events ever recorded (including later-overwritten ones). */
  std::uint64_t recorded() const { return recorded_; }

  /** Invokes `fn(const SpanEvent&)` oldest-to-newest (for tests/tools). */
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(ring_[(head_ + i) % ring_.size()]);
    }
  }

  // --- Export -----------------------------------------------------------

  /**
   * Writes the buffered events as Chrome trace-event JSON:
   * `{"traceEvents": [...], "displayTimeUnit": "ns"}`. Timestamps are
   * microseconds with nanosecond precision; subsystems export as
   * processes, synthetic tids as named threads, chains as flow events.
   * Output depends only on the recorded events, so fixed-seed runs
   * produce byte-identical files (the golden test relies on this).
   */
  void export_chrome_json(std::ostream& os) const;

 private:
  void push(const SpanEvent& ev);

  std::vector<SpanEvent> ring_;
  std::size_t head_ = 0;  ///< Index of the oldest event.
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
  FlowId current_flow_ = 0;
  /** (subsys, tid) -> display name, emitted as metadata at export. */
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::string> thread_names_;
};

/**
 * RAII flow-context guard: sets the tracer's current flow for the
 * enclosing scope so flow-agnostic subsystems attribute their spans to
 * the right chain. Null-tracer safe (a no-op), so call sites need no
 * branch of their own.
 */
class FlowScope {
 public:
  /** Enters flow `id` on `tracer` (nullptr tracer = no-op). */
  FlowScope(Tracer* tracer, FlowId id) : tracer_(tracer) {
    if (tracer_ != nullptr) prev_ = tracer_->set_current_flow(id);
  }

  ~FlowScope() {
    if (tracer_ != nullptr) tracer_->set_current_flow(prev_);
  }

  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

 private:
  Tracer* tracer_;
  FlowId prev_ = 0;
};

}  // namespace accelflow::obs

#endif  // ACCELFLOW_OBS_TRACER_H_
