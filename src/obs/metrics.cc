#include "obs/metrics.h"

#include <algorithm>
#include <cctype>

namespace accelflow::obs {

bool MetricsRegistry::valid_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (const char c : name) {
    if (c == '.') {
      if (prev_dot) return false;  // Empty segment.
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

MetricsRegistry::Metric* MetricsRegistry::find(std::string_view name) {
  for (auto& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const MetricsRegistry::Metric* MetricsRegistry::find(
    std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

bool MetricsRegistry::set(std::string_view name, double value, Kind kind) {
  if (!valid_name(name)) {
    ++collisions_;
    return false;
  }
  if (Metric* m = find(name)) {
    if (m->kind != kind) {
      ++collisions_;
      return false;
    }
    m->value = value;
    return true;
  }
  metrics_.push_back(Metric{std::string(name), value, kind});
  return true;
}

bool MetricsRegistry::add(std::string_view name, double delta, Kind kind) {
  if (!valid_name(name)) {
    ++collisions_;
    return false;
  }
  if (Metric* m = find(name)) {
    if (m->kind != kind) {
      ++collisions_;
      return false;
    }
    m->value += delta;
    return true;
  }
  metrics_.push_back(Metric{std::string(name), delta, kind});
  return true;
}

double MetricsRegistry::get(std::string_view name, double fallback) const {
  const Metric* m = find(name);
  return m != nullptr ? m->value : fallback;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

stats::CounterSet MetricsRegistry::to_counter_set() const {
  std::vector<const Metric*> sorted;
  sorted.reserve(metrics_.size());
  for (const auto& m : metrics_) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](const Metric* a, const Metric* b) { return a->name < b->name; });
  stats::CounterSet out;
  for (const Metric* m : sorted) out.set(m->name, m->value);
  return out;
}

std::string metric_path(std::string_view prefix, std::string_view suffix) {
  std::string out;
  out.reserve(prefix.size() + 1 + suffix.size());
  out.append(prefix);
  out.push_back('.');
  for (const char c : suffix) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace accelflow::obs
