#include "obs/metrics.h"

#include <algorithm>
#include <cctype>

namespace accelflow::obs {

bool MetricsRegistry::valid_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (const char c : name) {
    if (c == '.') {
      if (prev_dot) return false;  // Empty segment.
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

MetricsRegistry::Metric* MetricsRegistry::find(std::string_view name) {
  const auto it = index_.find(name);
  return it != index_.end() ? &metrics_[it->second] : nullptr;
}

const MetricsRegistry::Metric* MetricsRegistry::find(
    std::string_view name) const {
  const auto it = index_.find(name);
  return it != index_.end() ? &metrics_[it->second] : nullptr;
}

bool MetricsRegistry::set(std::string_view name, double value, Kind kind) {
  const MetricId id = intern(name, kind);
  if (id == kInvalidMetric) return false;
  metrics_[id].value = value;
  return true;
}

bool MetricsRegistry::add(std::string_view name, double delta, Kind kind) {
  const MetricId id = intern(name, kind);
  if (id == kInvalidMetric) return false;
  metrics_[id].value += delta;
  return true;
}

MetricsRegistry::MetricId MetricsRegistry::intern(std::string_view name,
                                                  Kind kind) {
  if (const auto it = index_.find(name); it != index_.end()) {
    if (metrics_[it->second].kind != kind) {
      ++collisions_;
      return kInvalidMetric;
    }
    return static_cast<MetricId>(it->second);
  }
  if (!valid_name(name)) {
    ++collisions_;
    return kInvalidMetric;
  }
  const std::size_t id = metrics_.size();
  metrics_.push_back(Metric{std::string(name), 0.0, kind});
  index_.emplace(metrics_.back().name, id);
  sorted_valid_ = false;  // A new name changes the serialization order.
  return static_cast<MetricId>(id);
}

double MetricsRegistry::get(std::string_view name, double fallback) const {
  const Metric* m = find(name);
  return m != nullptr ? m->value : fallback;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

stats::CounterSet MetricsRegistry::to_counter_set() const {
  if (!sorted_valid_) {
    sorted_.resize(metrics_.size());
    for (std::size_t i = 0; i < sorted_.size(); ++i) sorted_[i] = i;
    std::sort(sorted_.begin(), sorted_.end(),
              [this](std::size_t a, std::size_t b) {
                return metrics_[a].name < metrics_[b].name;
              });
    sorted_valid_ = true;
  }
  stats::CounterSet out;
  for (const std::size_t i : sorted_) {
    out.set(metrics_[i].name, metrics_[i].value);
  }
  return out;
}

std::string metric_path(std::string_view prefix, std::string_view suffix) {
  std::string out;
  out.reserve(prefix.size() + 1 + suffix.size());
  out.append(prefix);
  out.push_back('.');
  for (const char c : suffix) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace accelflow::obs
