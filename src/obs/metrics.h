#ifndef ACCELFLOW_OBS_METRICS_H_
#define ACCELFLOW_OBS_METRICS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/counters.h"

/**
 * @file
 * A named, hierarchical metrics registry.
 *
 * Components keep their cheap ad-hoc counter structs (AccelStats, DmaStats,
 * ...); the registry is the *export* surface that promotes them to stable
 * dotted names ("accel.tcp.queue_depth", "noc.hops", "mem.tlb.miss_rate")
 * snapshotted once at the end of a run — so steady-state simulation pays
 * nothing for it. core::Machine::snapshot_metrics() and
 * core::AccelFlowEngine::snapshot_metrics() populate it; benches serialize
 * it to JSON next to their stdout tables (see OBSERVABILITY.md for the
 * naming convention).
 */

namespace accelflow::obs {

/**
 * An insertion-ordered set of dotted-name metrics with collision and
 * validity checking, serializable through stats::CounterSet.
 *
 * Names are hierarchical: lower-case segments of [a-z0-9_] joined by '.'
 * (e.g. "accel.tcp.jobs"). A name registers with a kind on first use; a
 * later set/add under the same name must agree on the kind, otherwise the
 * write is rejected and counted (collisions()) — catching two components
 * exporting different things under one name, the failure mode ad-hoc
 * counter dumps cannot detect.
 */
class MetricsRegistry {
 public:
  /** How a metric behaves between snapshots. */
  enum class Kind : std::uint8_t {
    kCounter = 0,  ///< Monotonic count (events, bytes).
    kGauge,        ///< Point-in-time level (occupancy, utilization, rate).
  };

  /**
   * Interned handle to one registered metric, returned by intern(). Hot
   * writers resolve their dotted names once and then write through the
   * id — set_by_id()/add_by_id() are array indexing, no hashing — so a
   * snapshot taken every sweep point stops re-hashing every name.
   */
  using MetricId = std::uint32_t;

  /** intern() result for a malformed name or a kind collision. */
  static constexpr MetricId kInvalidMetric = 0xFFFFFFFFu;

  /**
   * Sets `name` to `value`, registering it on first use.
   * @return false (and leaves the registry unchanged) if `name` is
   *         malformed or already registered with a different kind.
   */
  bool set(std::string_view name, double value, Kind kind = Kind::kCounter);

  /** Adds `delta` to `name` (registering it at 0 on first use). */
  bool add(std::string_view name, double delta, Kind kind = Kind::kCounter);

  /**
   * Registers `name` (at 0 on first use) and returns its stable id; on a
   * malformed name or kind collision, counts the rejection and returns
   * kInvalidMetric. Ids stay valid for the registry's lifetime.
   */
  MetricId intern(std::string_view name, Kind kind = Kind::kCounter);

  /** Sets the interned metric to `value` (no-op for kInvalidMetric). */
  void set_by_id(MetricId id, double value) {
    if (id < metrics_.size()) metrics_[id].value = value;
  }

  /** Adds `delta` to the interned metric (no-op for kInvalidMetric). */
  void add_by_id(MetricId id, double delta) {
    if (id < metrics_.size()) metrics_[id].value += delta;
  }

  /** Value of `name`, or `fallback` when absent. */
  double get(std::string_view name, double fallback = 0.0) const;

  /** True if `name` is registered. */
  bool contains(std::string_view name) const;

  /** Registered metric count. */
  std::size_t size() const { return metrics_.size(); }

  /** Rejected writes: kind collisions plus malformed names. */
  std::uint64_t collisions() const { return collisions_; }

  /**
   * True when `name` is a well-formed dotted metric name: non-empty
   * [a-z0-9_] segments joined by single '.' characters.
   */
  static bool valid_name(std::string_view name);

  /**
   * Flattens the registry to a CounterSet, sorted by name so sibling
   * metrics of one hierarchy level serialize adjacently and the JSON
   * diffs cleanly across runs. The sort order is computed once per set of
   * registered names and cached; repeated snapshots (a sweep exporting
   * after every point) only pay the value copies.
   */
  stats::CounterSet to_counter_set() const;

  /** Writes the sorted flat-object JSON (via stats::CounterSet). */
  void write_json(std::ostream& os) const { to_counter_set().write_json(os); }

 private:
  struct Metric {
    std::string name;
    double value = 0.0;
    Kind kind = Kind::kCounter;
  };

  /** Heterogeneous string hashing: find by string_view, store strings. */
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  /** Heterogeneous string equality (see SvHash). */
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  Metric* find(std::string_view name);
  const Metric* find(std::string_view name) const;

  std::vector<Metric> metrics_;
  /** Name -> index into metrics_; owns key copies (metrics_ reallocates). */
  std::unordered_map<std::string, std::size_t, SvHash, SvEq> index_;
  /** Cached name-sorted order of metrics_ for to_counter_set(); rebuilt
   *  only when a registration invalidates it (values don't affect it). */
  mutable std::vector<std::size_t> sorted_;
  mutable bool sorted_valid_ = false;
  std::uint64_t collisions_ = 0;
};

/**
 * Builds the conventional dotted name `prefix + "." + suffix`, lowering
 * ASCII upper-case letters so enum display names ("TCP") can be used
 * directly as path segments ("accel.tcp...").
 */
std::string metric_path(std::string_view prefix, std::string_view suffix);

}  // namespace accelflow::obs

#endif  // ACCELFLOW_OBS_METRICS_H_
